package simnet

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"icistrategy/internal/blockcrypto"
)

// collectNet builds a network of n nodes that record every delivery.
func collectNet(t *testing.T, n int, model LatencyModel) (*Network, *[]Message) {
	t.Helper()
	net := New(model)
	var got []Message
	for i := 0; i < n; i++ {
		if err := net.AddNode(NodeID(i), HandlerFunc(func(_ *Network, m Message) {
			got = append(got, m)
		}), Coord{X: float64(i), Y: 0}); err != nil {
			t.Fatal(err)
		}
	}
	return net, &got
}

func TestAddNodeDuplicate(t *testing.T) {
	net := New(ConstantLatency(0))
	if err := net.AddNode(1, nil, Coord{}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(1, nil, Coord{}); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestSendDelivers(t *testing.T) {
	net, got := collectNet(t, 2, ConstantLatency(time.Millisecond))
	if err := net.Send(Message{From: 0, To: 1, Kind: "ping", Size: 100}); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Fatal("message delivered before Run")
	}
	net.RunUntilIdle()
	if len(*got) != 1 || (*got)[0].Kind != "ping" {
		t.Fatalf("deliveries = %v", *got)
	}
	if net.Now() != time.Millisecond {
		t.Fatalf("Now() = %v, want 1ms", net.Now())
	}
}

func TestSendUnknownNodes(t *testing.T) {
	net, _ := collectNet(t, 1, ConstantLatency(0))
	if err := net.Send(Message{From: 9, To: 0}); err == nil {
		t.Fatal("unknown sender accepted")
	}
	if err := net.Send(Message{From: 0, To: 9}); err == nil {
		t.Fatal("unknown receiver accepted")
	}
}

func TestVirtualTimeOrdering(t *testing.T) {
	net := New(ConstantLatency(0))
	var order []int
	net.After(30*time.Millisecond, func() { order = append(order, 3) })
	net.After(10*time.Millisecond, func() { order = append(order, 1) })
	net.After(20*time.Millisecond, func() { order = append(order, 2) })
	net.RunUntilIdle()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v", order)
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	net := New(ConstantLatency(0))
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		net.After(5*time.Millisecond, func() { order = append(order, i) })
	}
	net.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

func TestNestedSchedulingAdvancesTime(t *testing.T) {
	net, got := collectNet(t, 3, ConstantLatency(2*time.Millisecond))
	// Node 1 forwards to node 2 on receipt.
	if err := net.SetHandler(1, HandlerFunc(func(n *Network, m Message) {
		if err := n.Send(Message{From: 1, To: 2, Kind: "fwd", Size: m.Size}); err != nil {
			t.Errorf("forward: %v", err)
		}
	})); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(Message{From: 0, To: 1, Kind: "orig", Size: 10}); err != nil {
		t.Fatal(err)
	}
	net.RunUntilIdle()
	if len(*got) != 1 || (*got)[0].Kind != "fwd" {
		t.Fatalf("deliveries = %v", *got)
	}
	if net.Now() != 4*time.Millisecond {
		t.Fatalf("Now() = %v, want 4ms (two hops)", net.Now())
	}
}

func TestRunUntilLimit(t *testing.T) {
	net := New(ConstantLatency(0))
	fired := 0
	net.After(time.Millisecond, func() { fired++ })
	net.After(time.Hour, func() { fired++ })
	net.Run(time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if net.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", net.Pending())
	}
}

func TestDownNodeDropsAndCannotSend(t *testing.T) {
	net, got := collectNet(t, 2, ConstantLatency(time.Millisecond))
	if err := net.SetDown(1, true); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(Message{From: 0, To: 1, Kind: "x", Size: 5}); err != nil {
		t.Fatal(err) // send succeeds; delivery is dropped
	}
	net.RunUntilIdle()
	if len(*got) != 0 {
		t.Fatal("message delivered to a down node")
	}
	if net.DroppedCount() != 1 {
		t.Fatalf("DroppedCount() = %d, want 1", net.DroppedCount())
	}
	if err := net.Send(Message{From: 1, To: 0}); err == nil {
		t.Fatal("down node was allowed to send")
	}
	// Recovery restores delivery.
	if err := net.SetDown(1, false); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(Message{From: 0, To: 1, Kind: "x", Size: 5}); err != nil {
		t.Fatal(err)
	}
	net.RunUntilIdle()
	if len(*got) != 1 {
		t.Fatal("message not delivered after recovery")
	}
}

func TestFailureMidFlight(t *testing.T) {
	// A node that fails while a message is in flight must not receive it.
	net, got := collectNet(t, 2, ConstantLatency(10*time.Millisecond))
	if err := net.Send(Message{From: 0, To: 1, Kind: "x", Size: 5}); err != nil {
		t.Fatal(err)
	}
	net.After(time.Millisecond, func() {
		if err := net.SetDown(1, true); err != nil {
			t.Error(err)
		}
	})
	net.RunUntilIdle()
	if len(*got) != 0 {
		t.Fatal("in-flight message delivered to failed node")
	}
}

func TestTrafficAccounting(t *testing.T) {
	net, _ := collectNet(t, 3, ConstantLatency(0))
	sends := []struct {
		from, to NodeID
		size     int
	}{{0, 1, 100}, {0, 2, 50}, {1, 2, 25}}
	for _, s := range sends {
		if err := net.Send(Message{From: s.from, To: s.to, Kind: "data", Size: s.size}); err != nil {
			t.Fatal(err)
		}
	}
	net.RunUntilIdle()
	t0, _ := net.Traffic(0)
	if t0.BytesSent != 150 || t0.MsgsSent != 2 || t0.BytesRecv != 0 {
		t.Fatalf("node 0 traffic = %+v", t0)
	}
	t2, _ := net.Traffic(2)
	if t2.BytesRecv != 75 || t2.MsgsRecv != 2 {
		t.Fatalf("node 2 traffic = %+v", t2)
	}
	total := net.TotalTraffic()
	if total.BytesSent != 175 || total.BytesRecv != 175 {
		t.Fatalf("total traffic = %+v", total)
	}
	kd := net.KindTraffic("data")
	if kd.Messages != 3 || kd.Bytes != 175 {
		t.Fatalf("kind traffic = %+v", kd)
	}
	if len(net.Kinds()) != 1 {
		t.Fatalf("Kinds() = %v", net.Kinds())
	}
	net.ResetTraffic()
	if net.TotalTraffic() != (TrafficStats{}) {
		t.Fatal("ResetTraffic left residue")
	}
	if net.KindTraffic("data") != (KindStats{}) {
		t.Fatal("ResetTraffic left kind residue")
	}
}

func TestDeterministicTraces(t *testing.T) {
	run := func() (time.Duration, int64) {
		model := NewLinkModel(77)
		net := New(model)
		rng := blockcrypto.NewRNG(42)
		coords := RandomCoords(20, 60, rng)
		for i, c := range coords {
			id := NodeID(i)
			if err := net.AddNode(id, HandlerFunc(func(n *Network, m Message) {
				if m.Size > 1 {
					next := NodeID((uint64(m.To) + 1) % 20)
					_ = n.Send(Message{From: m.To, To: next, Kind: "relay", Size: m.Size / 2})
				}
			}), c); err != nil {
				t.Fatal(err)
			}
		}
		if err := net.Send(Message{From: 0, To: 1, Kind: "relay", Size: 1 << 16}); err != nil {
			t.Fatal(err)
		}
		net.RunUntilIdle()
		return net.Now(), net.TotalTraffic().BytesSent
	}
	t1, b1 := run()
	t2, b2 := run()
	if t1 != t2 || b1 != b2 {
		t.Fatalf("identical seeds diverged: (%v,%d) vs (%v,%d)", t1, b1, t2, b2)
	}
}

func TestLinkModelComponents(t *testing.T) {
	m := &LinkModel{Base: 10 * time.Millisecond, Bandwidth: 1000} // 1000 B/s
	a, b := Coord{0, 0}, Coord{3, 4}                              // distance 5 ms
	got := m.Latency(a, b, 500)                                   // 500 B at 1000 B/s = 500 ms
	want := 10*time.Millisecond + 5*time.Millisecond + 500*time.Millisecond
	if got != want {
		t.Fatalf("Latency = %v, want %v", got, want)
	}
}

func TestLinkModelZeroValue(t *testing.T) {
	var m LinkModel
	if got := m.Latency(Coord{}, Coord{}, 1<<20); got != 0 {
		t.Fatalf("zero-value LinkModel latency = %v, want 0", got)
	}
}

func TestCoordDistance(t *testing.T) {
	if d := (Coord{0, 0}).Distance(Coord{3, 4}); d != 5 {
		t.Fatalf("Distance = %v, want 5", d)
	}
	if d := (Coord{1, 1}).Distance(Coord{1, 1}); d != 0 {
		t.Fatalf("Distance = %v, want 0", d)
	}
}

func TestRandomCoordsInBounds(t *testing.T) {
	rng := blockcrypto.NewRNG(1)
	coords := RandomCoords(100, 60, rng)
	if len(coords) != 100 {
		t.Fatalf("got %d coords", len(coords))
	}
	for _, c := range coords {
		if c.X < 0 || c.X >= 60 || c.Y < 0 || c.Y >= 60 {
			t.Fatalf("coord %v out of bounds", c)
		}
	}
}

func TestClusteredCoordsCloserWithinRegion(t *testing.T) {
	rng := blockcrypto.NewRNG(3)
	coords := ClusteredCoords(200, 4, 60, 1.0, rng)
	// Nodes i and i+4 share a center; i and i+1 generally do not.
	var same, diff float64
	for i := 0; i+5 < len(coords); i += 4 {
		same += coords[i].Distance(coords[i+4])
		diff += coords[i].Distance(coords[i+1])
	}
	if same >= diff {
		t.Fatalf("same-region mean distance %v >= cross-region %v", same, diff)
	}
}

func TestSetHandlerUnknown(t *testing.T) {
	net := New(ConstantLatency(0))
	if err := net.SetHandler(5, nil); err == nil {
		t.Fatal("SetHandler on unknown node succeeded")
	}
	if _, err := net.Coordinate(5); err == nil {
		t.Fatal("Coordinate on unknown node succeeded")
	}
	if _, err := net.Traffic(5); err == nil {
		t.Fatal("Traffic on unknown node succeeded")
	}
	if err := net.SetDown(5, true); err == nil {
		t.Fatal("SetDown on unknown node succeeded")
	}
}

// BenchmarkSendDeliver measures the engine hot path at three network
// scales: the historical 100-node shape plus the paper-scale and
// beyond-paper-scale dense tables the experiment sweeps use. ReportAllocs
// keeps the pooling win visible; TestAllocsPerSendDeliver pins it.
func BenchmarkSendDeliver(b *testing.B) {
	for _, n := range []int{100, 4096, 16384} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := New(ConstantLatency(time.Millisecond))
			for i := 0; i < n; i++ {
				if err := net.AddNode(NodeID(i), HandlerFunc(func(*Network, Message) {}), Coord{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := net.Send(Message{From: NodeID(i % n), To: NodeID((i + 1) % n), Kind: "bench/msg", Size: 100}); err != nil {
					b.Fatal(err)
				}
				if i%1024 == 1023 {
					net.RunUntilIdle()
				}
			}
			net.RunUntilIdle()
		})
	}
}

// TestAllocsPerSendDeliver pins the event-pooling win: once the free list
// and intern table are warm, a full send→deliver cycle must stay within 2
// allocations (it is 0 on the current engine; 2 is the regression ceiling
// the PR 5 acceptance bar names).
func TestAllocsPerSendDeliver(t *testing.T) {
	net := New(ConstantLatency(time.Millisecond))
	const n = 64
	for i := 0; i < n; i++ {
		if err := net.AddNode(NodeID(i), HandlerFunc(func(*Network, Message) {}), Coord{}); err != nil {
			t.Fatal(err)
		}
	}
	// Warm-up: fill the event pool, intern the kind, and pre-grow the heap.
	for i := 0; i < 256; i++ {
		if err := net.Send(Message{From: NodeID(i % n), To: NodeID((i + 1) % n), Kind: "alloc/probe", Size: 64}); err != nil {
			t.Fatal(err)
		}
	}
	net.RunUntilIdle()
	i := 0
	avg := testing.AllocsPerRun(500, func() {
		if err := net.Send(Message{From: NodeID(i % n), To: NodeID((i + 1) % n), Kind: "alloc/probe", Size: 64}); err != nil {
			t.Fatal(err)
		}
		i++
		net.RunUntilIdle()
	})
	if avg > 2 {
		t.Fatalf("send→deliver costs %.2f allocs, ceiling is 2", avg)
	}
}

// TestSparseNodeIDs exercises the map fallback behind the dense node
// table: far-outlying IDs must behave exactly like dense ones.
func TestSparseNodeIDs(t *testing.T) {
	net := New(ConstantLatency(time.Millisecond))
	var got []Message
	collect := HandlerFunc(func(_ *Network, m Message) { got = append(got, m) })
	sparseID := NodeID(1 << 40)
	for _, id := range []NodeID{0, 1, sparseID} {
		if err := net.AddNode(id, collect, Coord{X: float64(id % 97)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := net.AddNode(sparseID, collect, Coord{}); err == nil {
		t.Fatal("duplicate sparse node accepted")
	}
	if net.NumNodes() != 3 {
		t.Fatalf("NumNodes() = %d, want 3", net.NumNodes())
	}
	if err := net.Send(Message{From: 0, To: sparseID, Kind: "up", Size: 10}); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(Message{From: sparseID, To: 1, Kind: "down", Size: 20}); err != nil {
		t.Fatal(err)
	}
	net.RunUntilIdle()
	if len(got) != 2 {
		t.Fatalf("deliveries = %v", got)
	}
	tr, err := net.Traffic(sparseID)
	if err != nil {
		t.Fatal(err)
	}
	if tr.BytesSent != 20 || tr.BytesRecv != 10 {
		t.Fatalf("sparse traffic = %+v", tr)
	}
	total := net.TotalTraffic()
	if total.BytesSent != 30 || total.BytesRecv != 30 {
		t.Fatalf("total = %+v", total)
	}
	if err := net.SetDown(sparseID, true); err != nil {
		t.Fatal(err)
	}
	if !net.IsDown(sparseID) {
		t.Fatal("sparse node not down")
	}
	if _, err := net.Coordinate(sparseID); err != nil {
		t.Fatal(err)
	}
}

// TestKindsSortedAndDeterministic pins the stats-snapshot determinism
// audit: Kinds() emits in sorted order, two identically seeded runs render
// identical per-kind reports, and kinds zeroed by ResetTraffic drop out.
func TestKindsSortedAndDeterministic(t *testing.T) {
	render := func() string {
		net := New(NewLinkModel(7))
		rng := blockcrypto.NewRNG(42)
		for i := 0; i < 8; i++ {
			if err := net.AddNode(NodeID(i), HandlerFunc(func(*Network, Message) {}), Coord{X: rng.Float64()}); err != nil {
				t.Fatal(err)
			}
		}
		kinds := []string{"zeta/msg", "alpha/msg", "mid/msg"}
		for i := 0; i < 64; i++ {
			m := Message{From: NodeID(i % 8), To: NodeID((i + 3) % 8), Kind: kinds[rng.Intn(len(kinds))], Size: 1 + rng.Intn(100)}
			if err := net.Send(m); err != nil {
				t.Fatal(err)
			}
		}
		net.RunUntilIdle()
		var b strings.Builder
		for _, k := range net.Kinds() {
			ks := net.KindTraffic(k)
			fmt.Fprintf(&b, "%s %d %d\n", k, ks.Messages, ks.Bytes)
		}
		return b.String()
	}
	r1, r2 := render(), render()
	if r1 != r2 {
		t.Fatalf("seeded kind reports diverged:\n%s\nvs\n%s", r1, r2)
	}
	lines := strings.Split(strings.TrimSpace(r1), "\n")
	if len(lines) != 3 {
		t.Fatalf("expected 3 kinds, got %q", r1)
	}
	if !sort.StringsAreSorted([]string{strings.Fields(lines[0])[0], strings.Fields(lines[1])[0], strings.Fields(lines[2])[0]}) {
		t.Fatalf("Kinds() not sorted: %q", r1)
	}

	// Zeroed kinds disappear until observed again.
	net := New(ConstantLatency(0))
	if err := net.AddNode(0, HandlerFunc(func(*Network, Message) {}), Coord{}); err != nil {
		t.Fatal(err)
	}
	if err := net.AddNode(1, HandlerFunc(func(*Network, Message) {}), Coord{}); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(Message{From: 0, To: 1, Kind: "gone", Size: 1}); err != nil {
		t.Fatal(err)
	}
	net.RunUntilIdle()
	net.ResetTraffic()
	if len(net.Kinds()) != 0 {
		t.Fatalf("Kinds() after ResetTraffic = %v", net.Kinds())
	}
}

// differentialWorkload drives one complete 4-ary-tree flood plus per-node
// acks through an engine via the given primitives, returning executed
// events. Both engines must produce identical schedules for it.
func differentialWorkload(n int, send func(Message) error, run func() int) (int, error) {
	root := Message{From: 0, To: 0, Kind: "diff/flood", Size: 4096}
	for c := 1; c <= 4 && c < n; c++ {
		root.To = NodeID(c)
		if err := send(root); err != nil {
			return 0, err
		}
	}
	return run(), nil
}

// TestBaselineDifferential pins the engine overhaul against the frozen
// pre-PR reference: the same seeded workload on both engines must agree on
// virtual time, traffic totals, per-kind stats, and delivery counts.
func TestBaselineDifferential(t *testing.T) {
	const n = 256
	floodSize, ackSize := 4096, 64
	children := func(i int) []NodeID {
		var out []NodeID
		for c := 4*i + 1; c <= 4*i+4 && c < n; c++ {
			out = append(out, NodeID(c))
		}
		return out
	}
	coords := RandomCoords(n, 60, blockcrypto.NewRNG(9))

	newEngine := New(NewLinkModel(17))
	for i := 0; i < n; i++ {
		i := i
		err := newEngine.AddNode(NodeID(i), HandlerFunc(func(nw *Network, m Message) {
			if m.Kind != "diff/flood" {
				return
			}
			for _, c := range children(i) {
				_ = nw.Send(Message{From: NodeID(i), To: c, Kind: "diff/flood", Size: floodSize})
			}
			_ = nw.Send(Message{From: NodeID(i), To: m.From, Kind: "diff/ack", Size: ackSize})
		}), coords[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	newEvents, err := differentialWorkload(n, newEngine.Send, newEngine.RunUntilIdle)
	if err != nil {
		t.Fatal(err)
	}

	base := NewBaseline(NewLinkModel(17))
	for i := 0; i < n; i++ {
		i := i
		err := base.AddNode(NodeID(i), func(nw *BaselineNetwork, m Message) {
			if m.Kind != "diff/flood" {
				return
			}
			for _, c := range children(i) {
				_ = nw.Send(Message{From: NodeID(i), To: c, Kind: "diff/flood", Size: floodSize})
			}
			_ = nw.Send(Message{From: NodeID(i), To: m.From, Kind: "diff/ack", Size: ackSize})
		}, coords[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	baseEvents, err := differentialWorkload(n, base.Send, base.RunUntilIdle)
	if err != nil {
		t.Fatal(err)
	}

	if newEvents != baseEvents {
		t.Fatalf("event counts diverged: new %d, baseline %d", newEvents, baseEvents)
	}
	if newEngine.Now() != base.Now() {
		t.Fatalf("virtual time diverged: new %v, baseline %v", newEngine.Now(), base.Now())
	}
	if newEngine.TotalTraffic() != base.TotalTraffic() {
		t.Fatalf("traffic diverged: new %+v, baseline %+v", newEngine.TotalTraffic(), base.TotalTraffic())
	}
	if newEngine.DeliveredCount() != base.DeliveredCount() {
		t.Fatalf("delivered diverged: new %d, baseline %d", newEngine.DeliveredCount(), base.DeliveredCount())
	}
	for _, k := range []string{"diff/flood", "diff/ack"} {
		if newEngine.KindTraffic(k) != base.KindTraffic(k) {
			t.Fatalf("kind %s diverged: new %+v, baseline %+v", k, newEngine.KindTraffic(k), base.KindTraffic(k))
		}
	}
}

func TestUplinkSerialization(t *testing.T) {
	net := New(ConstantLatency(0))
	var arrivals []time.Duration
	for i := 0; i < 4; i++ {
		if err := net.AddNode(NodeID(i), HandlerFunc(func(n *Network, m Message) {
			arrivals = append(arrivals, n.Now())
		}), Coord{}); err != nil {
			t.Fatal(err)
		}
	}
	net.SetUplinkBandwidth(1000) // 1000 B/s
	// Three 500-byte messages from node 0: transmissions serialize at
	// 0.5 s each, so arrivals land at 0.5, 1.0, 1.5 s.
	for i := 1; i <= 3; i++ {
		if err := net.Send(Message{From: 0, To: NodeID(i), Size: 500}); err != nil {
			t.Fatal(err)
		}
	}
	net.RunUntilIdle()
	want := []time.Duration{500 * time.Millisecond, time.Second, 1500 * time.Millisecond}
	if len(arrivals) != 3 {
		t.Fatalf("got %d arrivals", len(arrivals))
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Fatalf("arrival %d at %v, want %v", i, arrivals[i], want[i])
		}
	}
	// Different senders do not serialize against each other.
	net2 := New(ConstantLatency(0))
	var n2arrivals []time.Duration
	for i := 0; i < 3; i++ {
		if err := net2.AddNode(NodeID(i), HandlerFunc(func(n *Network, m Message) {
			n2arrivals = append(n2arrivals, n.Now())
		}), Coord{}); err != nil {
			t.Fatal(err)
		}
	}
	net2.SetUplinkBandwidth(1000)
	if err := net2.Send(Message{From: 0, To: 2, Size: 500}); err != nil {
		t.Fatal(err)
	}
	if err := net2.Send(Message{From: 1, To: 2, Size: 500}); err != nil {
		t.Fatal(err)
	}
	net2.RunUntilIdle()
	if len(n2arrivals) != 2 || n2arrivals[0] != 500*time.Millisecond || n2arrivals[1] != 500*time.Millisecond {
		t.Fatalf("independent senders serialized: %v", n2arrivals)
	}
}

func TestPartitionDropsCrossTraffic(t *testing.T) {
	net, got := collectNet(t, 4, ConstantLatency(time.Millisecond))
	net.Partition([]NodeID{0, 1}, []NodeID{2, 3})
	// Within-group delivery works; cross-group is dropped.
	if err := net.Send(Message{From: 0, To: 1, Kind: "in", Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(Message{From: 0, To: 2, Kind: "cross", Size: 1}); err != nil {
		t.Fatal(err)
	}
	net.RunUntilIdle()
	if len(*got) != 1 || (*got)[0].Kind != "in" {
		t.Fatalf("deliveries = %v", *got)
	}
	if net.DroppedCount() != 1 {
		t.Fatalf("DroppedCount() = %d", net.DroppedCount())
	}
	// Healing restores connectivity.
	net.Heal()
	if err := net.Send(Message{From: 0, To: 2, Kind: "cross", Size: 1}); err != nil {
		t.Fatal(err)
	}
	net.RunUntilIdle()
	if len(*got) != 2 {
		t.Fatal("cross-group message lost after Heal")
	}
}

func TestPartitionUngroupedNodesUnaffected(t *testing.T) {
	net, got := collectNet(t, 3, ConstantLatency(0))
	net.Partition([]NodeID{0}, []NodeID{1})
	// Node 2 is in no group: reachable by everyone.
	if err := net.Send(Message{From: 0, To: 2, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := net.Send(Message{From: 1, To: 2, Size: 1}); err != nil {
		t.Fatal(err)
	}
	net.RunUntilIdle()
	if len(*got) != 2 {
		t.Fatalf("ungrouped node missed messages: %d", len(*got))
	}
}

func TestPartitionMidFlight(t *testing.T) {
	// A partition raised while a message is in flight drops it: the
	// network models a cut link, not a sender-side check.
	net, got := collectNet(t, 2, ConstantLatency(10*time.Millisecond))
	if err := net.Send(Message{From: 0, To: 1, Size: 1}); err != nil {
		t.Fatal(err)
	}
	net.After(time.Millisecond, func() {
		net.Partition([]NodeID{0}, []NodeID{1})
	})
	net.RunUntilIdle()
	if len(*got) != 0 {
		t.Fatal("in-flight message crossed a fresh partition")
	}
}
