package chain

import (
	"errors"
	"fmt"

	"icistrategy/internal/blockcrypto"
)

// Ledger errors.
var (
	ErrInsufficientFunds = errors.New("chain: insufficient funds")
	ErrBadNonce          = errors.New("chain: transaction nonce out of order")
	ErrUnknownParent     = errors.New("chain: block parent not found")
)

// Account is the mutable state of one account.
type Account struct {
	Balance uint64
	Nonce   uint64 // next expected transaction nonce
}

// Ledger is an account-based state machine: a map of balances plus chained
// block headers. Applying a block is atomic — either every transaction is
// valid and the state advances, or the ledger is unchanged.
//
// Ledger is not safe for concurrent use; in the simulator each node owns
// its ledger.
type Ledger struct {
	accounts map[AccountID]Account
	tip      *Header
	headers  map[blockcrypto.Hash]Header
	height   uint64
}

// NewLedger returns an empty ledger with no blocks applied.
func NewLedger() *Ledger {
	return &Ledger{
		accounts: make(map[AccountID]Account),
		headers:  make(map[blockcrypto.Hash]Header),
	}
}

// Credit seeds an account with funds outside any block (genesis allocation).
func (l *Ledger) Credit(id AccountID, amount uint64) {
	acct := l.accounts[id]
	acct.Balance += amount
	l.accounts[id] = acct
}

// Account returns the current state of id (zero value if never seen).
func (l *Ledger) Account(id AccountID) Account {
	return l.accounts[id]
}

// Height returns the number of blocks applied.
func (l *Ledger) Height() uint64 {
	return l.height
}

// Tip returns the header of the most recently applied block, or nil if none.
func (l *Ledger) Tip() *Header {
	return l.tip
}

// HeaderByHash returns a previously applied header.
func (l *Ledger) HeaderByHash(h blockcrypto.Hash) (Header, bool) {
	hdr, ok := l.headers[h]
	return hdr, ok
}

// checkTx validates tx against the sender's pending state without mutating
// the ledger.
func checkTx(from Account, tx *Transaction) error {
	if err := tx.VerifySignature(); err != nil {
		return err
	}
	if tx.Nonce != from.Nonce {
		return fmt.Errorf("%w: got %d want %d", ErrBadNonce, tx.Nonce, from.Nonce)
	}
	total := tx.Amount + tx.Fee
	if total < tx.Amount { // overflow
		return ErrInsufficientFunds
	}
	if from.Balance < total {
		return fmt.Errorf("%w: balance %d, need %d", ErrInsufficientFunds, from.Balance, total)
	}
	return nil
}

// ApplyBlock validates b in full (shape, linkage, every transaction) and
// applies it atomically. On any error the ledger is left untouched.
func (l *Ledger) ApplyBlock(b *Block) error {
	if err := b.VerifyShape(); err != nil {
		return err
	}
	if l.tip == nil {
		if !b.Header.PrevHash.IsZero() {
			return ErrUnknownParent
		}
		if b.Header.Height != 0 {
			return ErrBlockBadHeight
		}
	} else if err := b.VerifyLink(l.tip); err != nil {
		return err
	}

	// Stage all mutations on copies so failure cannot corrupt state.
	staged := make(map[AccountID]Account)
	view := func(id AccountID) Account {
		if a, ok := staged[id]; ok {
			return a
		}
		return l.accounts[id]
	}
	for i, tx := range b.Txs {
		from := view(tx.From)
		if err := checkTx(from, tx); err != nil {
			return fmt.Errorf("block %d tx %d: %w", b.Header.Height, i, err)
		}
		from.Balance -= tx.Amount + tx.Fee
		from.Nonce++
		staged[tx.From] = from
		to := view(tx.To)
		to.Balance += tx.Amount
		staged[tx.To] = to
	}
	for id, acct := range staged {
		l.accounts[id] = acct
	}
	hdr := b.Header
	l.headers[hdr.Hash()] = hdr
	l.tip = &hdr
	l.height++
	return nil
}

// TotalSupply sums all balances; fees are burned, so supply only decreases
// as blocks apply. Used by invariant tests.
func (l *Ledger) TotalSupply() uint64 {
	var sum uint64
	for _, a := range l.accounts {
		sum += a.Balance
	}
	return sum
}

// NumAccounts returns how many accounts have been touched.
func (l *Ledger) NumAccounts() int {
	return len(l.accounts)
}
