package chain

import (
	"bytes"
	"testing"
	"testing/quick"

	"icistrategy/internal/blockcrypto"
)

// newTestTx builds a signed transaction between deterministic accounts.
func newTestTx(t testing.TB, fromIdx, toIdx uint64, amount, nonce uint64, payload []byte) (*Transaction, blockcrypto.KeyPair) {
	t.Helper()
	from := blockcrypto.DeriveKeyPair(1000, fromIdx)
	to := blockcrypto.DeriveKeyPair(1000, toIdx)
	tx := &Transaction{
		From:    blockcrypto.PublicKeyHash(from.Public),
		To:      blockcrypto.PublicKeyHash(to.Public),
		Amount:  amount,
		Nonce:   nonce,
		Fee:     1,
		Payload: payload,
	}
	tx.Sign(from)
	return tx, from
}

func TestTransactionSignVerify(t *testing.T) {
	tx, _ := newTestTx(t, 1, 2, 100, 0, []byte("memo"))
	if err := tx.VerifySignature(); err != nil {
		t.Fatalf("valid tx rejected: %v", err)
	}
}

func TestTransactionVerifyRejectsTampering(t *testing.T) {
	base := func() *Transaction {
		tx, _ := newTestTx(t, 1, 2, 100, 0, []byte("memo"))
		return tx
	}
	cases := []struct {
		name   string
		mutate func(*Transaction)
	}{
		{"amount", func(tx *Transaction) { tx.Amount++ }},
		{"nonce", func(tx *Transaction) { tx.Nonce++ }},
		{"fee", func(tx *Transaction) { tx.Fee++ }},
		{"payload", func(tx *Transaction) { tx.Payload = []byte("other") }},
		{"recipient", func(tx *Transaction) { tx.To[0] ^= 1 }},
		{"sender", func(tx *Transaction) { tx.From[0] ^= 1 }},
		{"signature", func(tx *Transaction) { tx.Signature[0] ^= 1 }},
		{"public key", func(tx *Transaction) { tx.PublicKey[0] ^= 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tx := base()
			tc.mutate(tx)
			if err := tx.VerifySignature(); err == nil {
				t.Fatal("tampered transaction accepted")
			}
		})
	}
}

func TestTransactionVerifyRejectsZeroAmount(t *testing.T) {
	from := blockcrypto.DeriveKeyPair(1000, 1)
	tx := &Transaction{
		From:   blockcrypto.PublicKeyHash(from.Public),
		To:     blockcrypto.PublicKeyHash(blockcrypto.DeriveKeyPair(1000, 2).Public),
		Amount: 0,
	}
	tx.Sign(from)
	if err := tx.VerifySignature(); err == nil {
		t.Fatal("zero-amount transaction accepted")
	}
}

func TestTransactionVerifyRejectsSelfTransfer(t *testing.T) {
	from := blockcrypto.DeriveKeyPair(1000, 1)
	id := blockcrypto.PublicKeyHash(from.Public)
	tx := &Transaction{From: id, To: id, Amount: 5}
	tx.Sign(from)
	if err := tx.VerifySignature(); err == nil {
		t.Fatal("self transfer accepted")
	}
}

func TestTransactionEncodeDecodeRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xab}, 500)}
	for _, p := range payloads {
		tx, _ := newTestTx(t, 3, 4, 77, 9, p)
		enc := tx.Encode()
		if len(enc) != tx.EncodedSize() {
			t.Fatalf("EncodedSize() = %d, actual %d", tx.EncodedSize(), len(enc))
		}
		got, n, err := DecodeTransaction(enc)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
		}
		if got.ID() != tx.ID() {
			t.Fatal("round trip changed the transaction ID")
		}
		if err := got.VerifySignature(); err != nil {
			t.Fatalf("decoded tx fails verification: %v", err)
		}
	}
}

func TestDecodeTransactionTruncated(t *testing.T) {
	tx, _ := newTestTx(t, 1, 2, 10, 0, []byte("payload"))
	enc := tx.Encode()
	for cut := 0; cut < len(enc); cut += 7 {
		if _, _, err := DecodeTransaction(enc[:cut]); err == nil {
			t.Fatalf("decoding %d-byte prefix succeeded", cut)
		}
	}
}

func TestDecodeTransactionPropertyNoPanic(t *testing.T) {
	// Arbitrary bytes must never panic the decoder.
	f := func(data []byte) bool {
		_, _, _ = DecodeTransaction(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTransactionIDChangesWithContent(t *testing.T) {
	a, _ := newTestTx(t, 1, 2, 10, 0, nil)
	b, _ := newTestTx(t, 1, 2, 11, 0, nil)
	if a.ID() == b.ID() {
		t.Fatal("different transactions share an ID")
	}
}

func BenchmarkTransactionEncode(b *testing.B) {
	tx, _ := newTestTx(b, 1, 2, 10, 0, bytes.Repeat([]byte{1}, 120))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx.Encode()
	}
}

func BenchmarkTransactionVerify(b *testing.B) {
	tx, _ := newTestTx(b, 1, 2, 10, 0, bytes.Repeat([]byte{1}, 120))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := tx.VerifySignature(); err != nil {
			b.Fatal(err)
		}
	}
}
