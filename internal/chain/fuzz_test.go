package chain

import (
	"bytes"
	"testing"

	"icistrategy/internal/blockcrypto"
)

// fuzzSeedBody builds a small valid encoded body to seed the corpus.
func fuzzSeedBody(tb testing.TB, txCount int) []byte {
	tb.Helper()
	key := blockcrypto.DeriveKeyPair(42, 1)
	txs := make([]*Transaction, txCount)
	for i := range txs {
		tx := &Transaction{
			Amount:  uint64(100 + i),
			Nonce:   uint64(i),
			Fee:     1,
			Payload: []byte("fuzz-seed-payload"),
		}
		tx.To[0] = byte(i)
		tx.Sign(key)
		txs[i] = tx
	}
	b := Block{Txs: txs}
	return b.EncodeBody()
}

// FuzzDecodeBody feeds arbitrary bytes to the body decoder. It must never
// panic and never over-allocate from a hostile count prefix, and anything
// it accepts must re-encode to the identical bytes (round-trip property).
func FuzzDecodeBody(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add(fuzzSeedBody(f, 1))
	f.Add(fuzzSeedBody(f, 5))
	f.Fuzz(func(t *testing.T, data []byte) {
		txs, err := DecodeBody(data)
		if err != nil {
			return
		}
		re := (&Block{Txs: txs}).EncodeBody()
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode round-trip drifted: %d bytes in, %d out", len(data), len(re))
		}
	})
}

// FuzzDecodeBlock feeds arbitrary bytes to the full-block decoder: header
// plus body. Accepted inputs must round-trip byte-exactly, and the header
// hash must be stable across the round-trip.
func FuzzDecodeBlock(f *testing.F) {
	f.Add([]byte{})
	body := fuzzSeedBody(f, 3)
	txs, err := DecodeBody(body)
	if err != nil {
		f.Fatal(err)
	}
	b, err := NewBlock(7, blockcrypto.ZeroHash, txs, 1234, 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b.Encode())
	f.Add(b.Encode()[:HeaderSize])
	f.Fuzz(func(t *testing.T, data []byte) {
		blk, err := DecodeBlock(data)
		if err != nil {
			return
		}
		re := blk.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("block round-trip drifted: %d bytes in, %d out", len(data), len(re))
		}
		blk2, err := DecodeBlock(re)
		if err != nil {
			t.Fatalf("re-decode of accepted block failed: %v", err)
		}
		if blk2.Header.Hash() != blk.Header.Hash() {
			t.Fatal("header hash unstable across round-trip")
		}
	})
}
