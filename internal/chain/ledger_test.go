package chain

import (
	"testing"

	"icistrategy/internal/blockcrypto"
)

// ledgerFixture returns a ledger with k funded accounts and their keys.
func ledgerFixture(t testing.TB, k int, funds uint64) (*Ledger, []blockcrypto.KeyPair, []AccountID) {
	t.Helper()
	l := NewLedger()
	keys := make([]blockcrypto.KeyPair, k)
	ids := make([]AccountID, k)
	for i := range keys {
		keys[i] = blockcrypto.DeriveKeyPair(2000, uint64(i))
		ids[i] = blockcrypto.PublicKeyHash(keys[i].Public)
		l.Credit(ids[i], funds)
	}
	return l, keys, ids
}

func signedTransfer(keys []blockcrypto.KeyPair, ids []AccountID, from, to int, amount, nonce uint64) *Transaction {
	tx := &Transaction{
		From:   ids[from],
		To:     ids[to],
		Amount: amount,
		Nonce:  nonce,
		Fee:    1,
	}
	tx.Sign(keys[from])
	return tx
}

func mustBlock(t testing.TB, height uint64, prev blockcrypto.Hash, txs []*Transaction) *Block {
	t.Helper()
	b, err := NewBlock(height, prev, txs, height*1000+1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestLedgerApplyGenesis(t *testing.T) {
	l, keys, ids := ledgerFixture(t, 3, 1000)
	b := mustBlock(t, 0, blockcrypto.ZeroHash, []*Transaction{
		signedTransfer(keys, ids, 0, 1, 100, 0),
	})
	if err := l.ApplyBlock(b); err != nil {
		t.Fatalf("genesis apply: %v", err)
	}
	if got := l.Account(ids[0]).Balance; got != 1000-100-1 {
		t.Fatalf("sender balance = %d, want %d", got, 1000-100-1)
	}
	if got := l.Account(ids[1]).Balance; got != 1100 {
		t.Fatalf("recipient balance = %d, want 1100", got)
	}
	if l.Height() != 1 {
		t.Fatalf("height = %d, want 1", l.Height())
	}
	if l.Tip() == nil || l.Tip().Hash() != b.Hash() {
		t.Fatal("tip not updated")
	}
}

func TestLedgerRejectsNonGenesisFirstBlock(t *testing.T) {
	l, keys, ids := ledgerFixture(t, 2, 1000)
	b := mustBlock(t, 1, blockcrypto.Sum256([]byte("phantom")), []*Transaction{
		signedTransfer(keys, ids, 0, 1, 1, 0),
	})
	if err := l.ApplyBlock(b); err == nil {
		t.Fatal("first block with nonzero parent accepted")
	}
}

func TestLedgerChainOfBlocks(t *testing.T) {
	l, keys, ids := ledgerFixture(t, 4, 10_000)
	prev := blockcrypto.ZeroHash
	nonces := make([]uint64, 4)
	for h := uint64(0); h < 10; h++ {
		from := int(h % 4)
		to := (from + 1) % 4
		tx := signedTransfer(keys, ids, from, to, 10, nonces[from])
		nonces[from]++
		b := mustBlock(t, h, prev, []*Transaction{tx})
		if err := l.ApplyBlock(b); err != nil {
			t.Fatalf("block %d: %v", h, err)
		}
		prev = b.Hash()
	}
	if l.Height() != 10 {
		t.Fatalf("height = %d, want 10", l.Height())
	}
	// Headers all retrievable by hash.
	if _, ok := l.HeaderByHash(prev); !ok {
		t.Fatal("tip header not retrievable")
	}
}

func TestLedgerRejectsInsufficientFunds(t *testing.T) {
	l, keys, ids := ledgerFixture(t, 2, 50)
	b := mustBlock(t, 0, blockcrypto.ZeroHash, []*Transaction{
		signedTransfer(keys, ids, 0, 1, 50, 0), // 50 + fee 1 > 50
	})
	if err := l.ApplyBlock(b); err == nil {
		t.Fatal("overdraft accepted")
	}
	if l.Height() != 0 {
		t.Fatal("failed apply advanced the ledger")
	}
}

func TestLedgerRejectsBadNonce(t *testing.T) {
	l, keys, ids := ledgerFixture(t, 2, 1000)
	b := mustBlock(t, 0, blockcrypto.ZeroHash, []*Transaction{
		signedTransfer(keys, ids, 0, 1, 10, 5),
	})
	if err := l.ApplyBlock(b); err == nil {
		t.Fatal("out-of-order nonce accepted")
	}
}

func TestLedgerReplayRejected(t *testing.T) {
	l, keys, ids := ledgerFixture(t, 2, 1000)
	tx := signedTransfer(keys, ids, 0, 1, 10, 0)
	b0 := mustBlock(t, 0, blockcrypto.ZeroHash, []*Transaction{tx})
	if err := l.ApplyBlock(b0); err != nil {
		t.Fatal(err)
	}
	// Same signed transaction replayed in the next block must fail: the
	// sender's nonce has advanced.
	b1 := mustBlock(t, 1, b0.Hash(), []*Transaction{tx})
	if err := l.ApplyBlock(b1); err == nil {
		t.Fatal("replayed transaction accepted")
	}
}

func TestLedgerAtomicity(t *testing.T) {
	l, keys, ids := ledgerFixture(t, 3, 100)
	good := signedTransfer(keys, ids, 0, 1, 10, 0)
	bad := signedTransfer(keys, ids, 2, 1, 1000, 0) // overdraft
	b := mustBlock(t, 0, blockcrypto.ZeroHash, []*Transaction{good, bad})
	if err := l.ApplyBlock(b); err == nil {
		t.Fatal("block with invalid tx accepted")
	}
	// The good transaction must not have been applied.
	if got := l.Account(ids[0]).Balance; got != 100 {
		t.Fatalf("partial application: sender balance %d, want 100", got)
	}
	if got := l.Account(ids[1]).Balance; got != 100 {
		t.Fatalf("partial application: recipient balance %d, want 100", got)
	}
}

func TestLedgerIntraBlockDependencies(t *testing.T) {
	// tx1 funds account 1; tx2 spends those funds within the same block.
	l, keys, ids := ledgerFixture(t, 3, 0)
	l.Credit(ids[0], 1000)
	tx1 := signedTransfer(keys, ids, 0, 1, 500, 0)
	tx2 := signedTransfer(keys, ids, 1, 2, 400, 0)
	b := mustBlock(t, 0, blockcrypto.ZeroHash, []*Transaction{tx1, tx2})
	if err := l.ApplyBlock(b); err != nil {
		t.Fatalf("intra-block dependency rejected: %v", err)
	}
	if got := l.Account(ids[2]).Balance; got != 400 {
		t.Fatalf("account 2 balance = %d, want 400", got)
	}
}

func TestLedgerSupplyDecreasesByFees(t *testing.T) {
	l, keys, ids := ledgerFixture(t, 2, 1000)
	before := l.TotalSupply()
	b := mustBlock(t, 0, blockcrypto.ZeroHash, []*Transaction{
		signedTransfer(keys, ids, 0, 1, 10, 0), // fee 1 burned
	})
	if err := l.ApplyBlock(b); err != nil {
		t.Fatal(err)
	}
	if got := l.TotalSupply(); got != before-1 {
		t.Fatalf("supply = %d, want %d", got, before-1)
	}
}

func TestLedgerDoubleSpendAcrossOneBlock(t *testing.T) {
	l, keys, ids := ledgerFixture(t, 3, 100)
	// Both spend the full balance with the same nonce: second must fail.
	tx1 := signedTransfer(keys, ids, 0, 1, 99, 0)
	tx2 := signedTransfer(keys, ids, 0, 2, 99, 0)
	b := mustBlock(t, 0, blockcrypto.ZeroHash, []*Transaction{tx1, tx2})
	if err := l.ApplyBlock(b); err == nil {
		t.Fatal("double spend accepted")
	}
}

func TestLedgerNumAccounts(t *testing.T) {
	l, _, _ := ledgerFixture(t, 5, 10)
	if got := l.NumAccounts(); got != 5 {
		t.Fatalf("NumAccounts() = %d, want 5", got)
	}
}
