package chain

import (
	"encoding/binary"
	"errors"
	"fmt"

	"icistrategy/internal/blockcrypto"
)

// Block errors.
var (
	ErrBlockTruncated   = errors.New("chain: block encoding truncated")
	ErrBlockEmptyBody   = errors.New("chain: block has no transactions")
	ErrBlockBadRoot     = errors.New("chain: merkle root does not match body")
	ErrBlockBadParent   = errors.New("chain: previous-hash does not match parent")
	ErrBlockBadHeight   = errors.New("chain: height does not follow parent")
	ErrBlockInTheFuture = errors.New("chain: block timestamp precedes parent")
)

// HeaderSize is the fixed encoded size of a block header in bytes. Headers
// are what every node stores regardless of strategy, so their size matters
// for the storage accounting.
const HeaderSize = 8 + blockcrypto.HashSize + blockcrypto.HashSize + 8 + 8 + 4

// Header is the fixed-size summary of a block that every participant keeps.
type Header struct {
	Height     uint64
	PrevHash   blockcrypto.Hash
	MerkleRoot blockcrypto.Hash
	TimeMillis uint64 // virtual simulation time of block production
	Proposer   uint64 // producing node ID
	TxCount    uint32
}

// EncodeHeader serializes the header into its canonical HeaderSize bytes.
func (h *Header) Encode() []byte {
	buf := make([]byte, 0, HeaderSize)
	buf = binary.BigEndian.AppendUint64(buf, h.Height)
	buf = append(buf, h.PrevHash[:]...)
	buf = append(buf, h.MerkleRoot[:]...)
	buf = binary.BigEndian.AppendUint64(buf, h.TimeMillis)
	buf = binary.BigEndian.AppendUint64(buf, h.Proposer)
	buf = binary.BigEndian.AppendUint32(buf, h.TxCount)
	return buf
}

// DecodeHeader parses a header from data.
func DecodeHeader(data []byte) (Header, error) {
	var h Header
	if len(data) < HeaderSize {
		return h, ErrBlockTruncated
	}
	off := 0
	h.Height = binary.BigEndian.Uint64(data[off:])
	off += 8
	copy(h.PrevHash[:], data[off:])
	off += blockcrypto.HashSize
	copy(h.MerkleRoot[:], data[off:])
	off += blockcrypto.HashSize
	h.TimeMillis = binary.BigEndian.Uint64(data[off:])
	off += 8
	h.Proposer = binary.BigEndian.Uint64(data[off:])
	off += 8
	h.TxCount = binary.BigEndian.Uint32(data[off:])
	return h, nil
}

// Hash returns the content address of the header, which identifies the
// whole block (the Merkle root commits to the body).
func (h *Header) Hash() blockcrypto.Hash {
	return blockcrypto.Sum256(h.Encode())
}

// Block is a header plus its transaction body.
type Block struct {
	Header Header
	Txs    []*Transaction
}

// NewBlock assembles a block at the given height on top of prev (ZeroHash
// for genesis), computing the Merkle root from txs.
func NewBlock(height uint64, prev blockcrypto.Hash, txs []*Transaction, timeMillis, proposer uint64) (*Block, error) {
	if len(txs) == 0 {
		return nil, ErrBlockEmptyBody
	}
	tree, err := TxMerkleTree(txs)
	if err != nil {
		return nil, err
	}
	return &Block{
		Header: Header{
			Height:     height,
			PrevHash:   prev,
			MerkleRoot: tree.Root(),
			TimeMillis: timeMillis,
			Proposer:   proposer,
			TxCount:    uint32(len(txs)),
		},
		Txs: txs,
	}, nil
}

// Hash returns the block's identifier (the header hash).
func (b *Block) Hash() blockcrypto.Hash {
	return b.Header.Hash()
}

// EncodeBody serializes only the transaction body: txCount(4) then each
// encoded transaction. The body is what strategies chunk and distribute.
func (b *Block) EncodeBody() []byte {
	n := 4
	for _, tx := range b.Txs {
		n += tx.EncodedSize()
	}
	buf := make([]byte, 0, n)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b.Txs)))
	for _, tx := range b.Txs {
		buf = append(buf, tx.Encode()...)
	}
	return buf
}

// BodySize returns len(b.EncodeBody()) without allocating.
func (b *Block) BodySize() int {
	n := 4
	for _, tx := range b.Txs {
		n += tx.EncodedSize()
	}
	return n
}

// Encode serializes header followed by body.
func (b *Block) Encode() []byte {
	head := b.Header.Encode()
	body := b.EncodeBody()
	out := make([]byte, 0, len(head)+len(body))
	out = append(out, head...)
	out = append(out, body...)
	return out
}

// minTxEncodedSize is the smallest possible encoded transaction: fixed
// fields plus empty payload, key, and signature. It bounds the declared
// transaction count of a body against its actual length, so a corrupt or
// hostile count prefix cannot trigger a giant allocation.
const minTxEncodedSize = 2*blockcrypto.HashSize + 24 + 4 + 2 + 2

// DecodeBody parses a transaction body produced by EncodeBody.
func DecodeBody(data []byte) ([]*Transaction, error) {
	if len(data) < 4 {
		return nil, ErrBlockTruncated
	}
	count := int(binary.BigEndian.Uint32(data))
	if count*minTxEncodedSize > len(data)-4 {
		return nil, fmt.Errorf("%w: %d txs declared in %d bytes", ErrBlockTruncated, count, len(data))
	}
	off := 4
	txs := make([]*Transaction, 0, count)
	for i := 0; i < count; i++ {
		tx, n, err := DecodeTransaction(data[off:])
		if err != nil {
			return nil, fmt.Errorf("tx %d: %w", i, err)
		}
		off += n
		txs = append(txs, tx)
	}
	if off != len(data) {
		return nil, fmt.Errorf("chain: %d trailing bytes after body", len(data)-off)
	}
	return txs, nil
}

// DecodeBlock parses a full block produced by Encode.
func DecodeBlock(data []byte) (*Block, error) {
	h, err := DecodeHeader(data)
	if err != nil {
		return nil, err
	}
	txs, err := DecodeBody(data[HeaderSize:])
	if err != nil {
		return nil, err
	}
	return &Block{Header: h, Txs: txs}, nil
}

// VerifyShape checks the block's internal consistency: non-empty body,
// TxCount agreement, and Merkle root matching the body. It does not touch
// ledger state.
func (b *Block) VerifyShape() error {
	if len(b.Txs) == 0 {
		return ErrBlockEmptyBody
	}
	if int(b.Header.TxCount) != len(b.Txs) {
		return fmt.Errorf("%w: header says %d txs, body has %d", ErrBlockBadRoot, b.Header.TxCount, len(b.Txs))
	}
	tree, err := TxMerkleTree(b.Txs)
	if err != nil {
		return err
	}
	if tree.Root() != b.Header.MerkleRoot {
		return ErrBlockBadRoot
	}
	return nil
}

// VerifyLink checks that b correctly extends parent.
func (b *Block) VerifyLink(parent *Header) error {
	if b.Header.PrevHash != parent.Hash() {
		return ErrBlockBadParent
	}
	if b.Header.Height != parent.Height+1 {
		return ErrBlockBadHeight
	}
	if b.Header.TimeMillis < parent.TimeMillis {
		return ErrBlockInTheFuture
	}
	return nil
}
