package chain

import (
	"errors"

	"icistrategy/internal/blockcrypto"
)

// Merkle tree errors.
var (
	ErrEmptyTree     = errors.New("chain: merkle tree has no leaves")
	ErrLeafOutOfs    = errors.New("chain: merkle leaf index out of range")
	ErrProofInvalid  = errors.New("chain: merkle proof does not verify")
	ErrProofTooLarge = errors.New("chain: merkle proof longer than tree depth bound")
)

// maxProofDepth bounds proof length during verification; 2^64 leaves is
// unreachable, 64 levels is a safe ceiling.
const maxProofDepth = 64

// MerkleTree is a binary hash tree over a sequence of leaf hashes. Odd
// levels duplicate the trailing node (Bitcoin-style). The tree retains all
// interior levels so proofs are O(log n) lookups.
type MerkleTree struct {
	levels [][]blockcrypto.Hash // levels[0] = leaves, last level = [root]
}

// NewMerkleTree builds a tree over the given leaf hashes.
func NewMerkleTree(leaves []blockcrypto.Hash) (*MerkleTree, error) {
	if len(leaves) == 0 {
		return nil, ErrEmptyTree
	}
	t := &MerkleTree{}
	level := append([]blockcrypto.Hash(nil), leaves...)
	t.levels = append(t.levels, level)
	for len(level) > 1 {
		next := make([]blockcrypto.Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, blockcrypto.HashPair(level[i], level[i+1]))
			} else {
				next = append(next, blockcrypto.HashPair(level[i], level[i]))
			}
		}
		t.levels = append(t.levels, next)
		level = next
	}
	return t, nil
}

// TxMerkleTree builds the tree over the IDs of the given transactions.
func TxMerkleTree(txs []*Transaction) (*MerkleTree, error) {
	leaves := make([]blockcrypto.Hash, len(txs))
	for i, tx := range txs {
		leaves[i] = tx.ID()
	}
	return NewMerkleTree(leaves)
}

// Root returns the root hash of the tree.
func (t *MerkleTree) Root() blockcrypto.Hash {
	top := t.levels[len(t.levels)-1]
	return top[0]
}

// NumLeaves returns the number of leaves.
func (t *MerkleTree) NumLeaves() int {
	return len(t.levels[0])
}

// ProofStep is one sibling on the path from a leaf to the root.
type ProofStep struct {
	Sibling blockcrypto.Hash
	// Left reports whether the sibling is the left operand of HashPair.
	Left bool
}

// Proof is a Merkle membership proof for a single leaf.
type Proof struct {
	LeafIndex int
	Steps     []ProofStep
}

// EncodedSize returns the wire size of the proof: 4 bytes of index plus
// (hash + side byte) per step. Used by the communication cost accounting.
func (p Proof) EncodedSize() int {
	return 4 + len(p.Steps)*(blockcrypto.HashSize+1)
}

// Prove returns the membership proof for leaf index i.
func (t *MerkleTree) Prove(i int) (Proof, error) {
	if i < 0 || i >= t.NumLeaves() {
		return Proof{}, ErrLeafOutOfs
	}
	proof := Proof{LeafIndex: i}
	idx := i
	for _, level := range t.levels[:len(t.levels)-1] {
		sib := idx ^ 1
		if sib >= len(level) {
			sib = idx // duplicated trailing node
		}
		proof.Steps = append(proof.Steps, ProofStep{
			Sibling: level[sib],
			Left:    sib < idx,
		})
		idx /= 2
	}
	return proof, nil
}

// VerifyProof checks that leaf is a member of the tree with the given root
// under proof.
func VerifyProof(root, leaf blockcrypto.Hash, proof Proof) error {
	if len(proof.Steps) > maxProofDepth {
		return ErrProofTooLarge
	}
	h := leaf
	for _, s := range proof.Steps {
		if s.Left {
			h = blockcrypto.HashPair(s.Sibling, h)
		} else {
			h = blockcrypto.HashPair(h, s.Sibling)
		}
	}
	if h != root {
		return ErrProofInvalid
	}
	return nil
}
