package chain

import (
	"testing"

	"icistrategy/internal/blockcrypto"
)

// newTestBlock builds a block with n signed transactions at the given height.
func newTestBlock(t testing.TB, height uint64, prev blockcrypto.Hash, n int) *Block {
	t.Helper()
	txs := make([]*Transaction, n)
	for i := range txs {
		tx, _ := newTestTx(t, uint64(i+1), uint64(i+2), 10, height, []byte("p"))
		txs[i] = tx
	}
	b, err := NewBlock(height, prev, txs, height*1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewBlockRejectsEmpty(t *testing.T) {
	if _, err := NewBlock(0, blockcrypto.ZeroHash, nil, 0, 0); err == nil {
		t.Fatal("empty block accepted")
	}
}

func TestHeaderEncodeDecodeRoundTrip(t *testing.T) {
	b := newTestBlock(t, 3, blockcrypto.Sum256([]byte("prev")), 5)
	enc := b.Header.Encode()
	if len(enc) != HeaderSize {
		t.Fatalf("encoded header is %d bytes, want %d", len(enc), HeaderSize)
	}
	got, err := DecodeHeader(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != b.Header {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, b.Header)
	}
}

func TestDecodeHeaderTruncated(t *testing.T) {
	if _, err := DecodeHeader(make([]byte, HeaderSize-1)); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestBlockEncodeDecodeRoundTrip(t *testing.T) {
	b := newTestBlock(t, 0, blockcrypto.ZeroHash, 8)
	enc := b.Encode()
	got, err := DecodeBlock(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != b.Hash() {
		t.Fatal("round trip changed block hash")
	}
	if err := got.VerifyShape(); err != nil {
		t.Fatalf("decoded block fails shape check: %v", err)
	}
}

func TestBodySizeMatchesEncoding(t *testing.T) {
	b := newTestBlock(t, 0, blockcrypto.ZeroHash, 13)
	if got, want := b.BodySize(), len(b.EncodeBody()); got != want {
		t.Fatalf("BodySize() = %d, len(EncodeBody()) = %d", got, want)
	}
}

func TestDecodeBodyRejectsTrailingBytes(t *testing.T) {
	b := newTestBlock(t, 0, blockcrypto.ZeroHash, 2)
	body := append(b.EncodeBody(), 0x00)
	if _, err := DecodeBody(body); err == nil {
		t.Fatal("body with trailing garbage accepted")
	}
}

func TestDecodeBodyTruncated(t *testing.T) {
	b := newTestBlock(t, 0, blockcrypto.ZeroHash, 3)
	body := b.EncodeBody()
	if _, err := DecodeBody(body[:len(body)-5]); err == nil {
		t.Fatal("truncated body accepted")
	}
	if _, err := DecodeBody(nil); err == nil {
		t.Fatal("nil body accepted")
	}
}

func TestVerifyShapeDetectsTamperedBody(t *testing.T) {
	b := newTestBlock(t, 0, blockcrypto.ZeroHash, 4)
	b.Txs[2].Amount++ // breaks the Merkle root
	if err := b.VerifyShape(); err == nil {
		t.Fatal("tampered body passed shape verification")
	}
}

func TestVerifyShapeDetectsWrongTxCount(t *testing.T) {
	b := newTestBlock(t, 0, blockcrypto.ZeroHash, 4)
	b.Header.TxCount = 3
	if err := b.VerifyShape(); err == nil {
		t.Fatal("wrong TxCount passed shape verification")
	}
}

func TestVerifyLink(t *testing.T) {
	genesis := newTestBlock(t, 0, blockcrypto.ZeroHash, 2)
	next := newTestBlock(t, 1, genesis.Hash(), 2)
	if err := next.VerifyLink(&genesis.Header); err != nil {
		t.Fatalf("valid link rejected: %v", err)
	}

	wrongParent := newTestBlock(t, 1, blockcrypto.Sum256([]byte("other")), 2)
	if err := wrongParent.VerifyLink(&genesis.Header); err == nil {
		t.Fatal("wrong parent accepted")
	}

	wrongHeight := newTestBlock(t, 5, genesis.Hash(), 2)
	if err := wrongHeight.VerifyLink(&genesis.Header); err == nil {
		t.Fatal("wrong height accepted")
	}
}

func TestVerifyLinkRejectsTimeRegression(t *testing.T) {
	genesis := newTestBlock(t, 0, blockcrypto.ZeroHash, 2)
	genesis.Header.TimeMillis = 10_000
	txs := []*Transaction{genesis.Txs[0]}
	next, err := NewBlock(1, genesis.Hash(), txs, 5_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := next.VerifyLink(&genesis.Header); err == nil {
		t.Fatal("time-regressing block accepted")
	}
}

func TestBlockHashDependsOnHeaderOnly(t *testing.T) {
	b := newTestBlock(t, 0, blockcrypto.ZeroHash, 4)
	h1 := b.Hash()
	// Mutating the body without updating the root does not change the block
	// ID — the Merkle root is the commitment, and VerifyShape catches the
	// inconsistency.
	b.Txs[0].Amount++
	if b.Hash() != h1 {
		t.Fatal("block hash changed without a header change")
	}
	if err := b.VerifyShape(); err == nil {
		t.Fatal("inconsistent body undetected")
	}
}

func BenchmarkBlockEncode(b *testing.B) {
	blk := newTestBlock(b, 0, blockcrypto.ZeroHash, 256)
	b.SetBytes(int64(len(blk.Encode())))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		blk.Encode()
	}
}

func BenchmarkBlockVerifyShape(b *testing.B) {
	blk := newTestBlock(b, 0, blockcrypto.ZeroHash, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := blk.VerifyShape(); err != nil {
			b.Fatal(err)
		}
	}
}
