// Package chain implements the blockchain data model used by every storage
// strategy in this repository: signed transactions, Merkle trees with
// membership proofs, blocks, and an account-based ledger with full
// validation. The encodings are deterministic, length-prefixed binary so that
// hashes and storage accounting are stable across runs.
package chain

import (
	"encoding/binary"
	"errors"
	"fmt"

	"icistrategy/internal/blockcrypto"
)

// Transaction errors.
var (
	ErrTxBadSignature = errors.New("chain: transaction signature invalid")
	ErrTxTruncated    = errors.New("chain: transaction encoding truncated")
	ErrTxZeroAmount   = errors.New("chain: transaction amount must be positive")
	ErrTxSelfTransfer = errors.New("chain: sender and recipient are identical")
)

// AccountID identifies an account: the hash of its public key.
type AccountID = blockcrypto.Hash

// Transaction is a signed value transfer between two accounts, with an
// optional opaque payload to model non-trivial transaction sizes.
type Transaction struct {
	From      AccountID
	To        AccountID
	Amount    uint64
	Nonce     uint64 // per-sender sequence number, for replay protection
	Fee       uint64
	Payload   []byte
	PublicKey []byte // sender's Ed25519 public key
	Signature []byte
}

// SigningBytes returns the canonical byte string covered by the signature:
// every field except PublicKey and Signature.
func (tx *Transaction) SigningBytes() []byte {
	buf := make([]byte, 0, 2*blockcrypto.HashSize+24+len(tx.Payload))
	buf = append(buf, tx.From[:]...)
	buf = append(buf, tx.To[:]...)
	buf = binary.BigEndian.AppendUint64(buf, tx.Amount)
	buf = binary.BigEndian.AppendUint64(buf, tx.Nonce)
	buf = binary.BigEndian.AppendUint64(buf, tx.Fee)
	buf = append(buf, tx.Payload...)
	return buf
}

// Sign populates PublicKey and Signature using key, which must belong to the
// From account.
func (tx *Transaction) Sign(key blockcrypto.KeyPair) {
	tx.PublicKey = append([]byte(nil), key.Public...)
	tx.Signature = key.Sign(tx.SigningBytes())
}

// ID returns the content address of the encoded transaction.
func (tx *Transaction) ID() blockcrypto.Hash {
	return blockcrypto.Sum256(tx.Encode())
}

// VerifySignature checks structural sanity and that Signature is a valid
// signature of SigningBytes under PublicKey, and that PublicKey hashes to
// the From account.
func (tx *Transaction) VerifySignature() error {
	if tx.Amount == 0 {
		return ErrTxZeroAmount
	}
	if tx.From == tx.To {
		return ErrTxSelfTransfer
	}
	if blockcrypto.PublicKeyHash(tx.PublicKey) != tx.From {
		return fmt.Errorf("%w: public key does not hash to sender account", ErrTxBadSignature)
	}
	if err := blockcrypto.Verify(tx.PublicKey, tx.SigningBytes(), tx.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrTxBadSignature, err)
	}
	return nil
}

// Encode serializes the transaction to the canonical binary form:
//
//	from(32) to(32) amount(8) nonce(8) fee(8)
//	payloadLen(4) payload pubKeyLen(2) pubKey sigLen(2) sig
func (tx *Transaction) Encode() []byte {
	n := 2*blockcrypto.HashSize + 24 + 4 + len(tx.Payload) + 2 + len(tx.PublicKey) + 2 + len(tx.Signature)
	buf := make([]byte, 0, n)
	buf = append(buf, tx.From[:]...)
	buf = append(buf, tx.To[:]...)
	buf = binary.BigEndian.AppendUint64(buf, tx.Amount)
	buf = binary.BigEndian.AppendUint64(buf, tx.Nonce)
	buf = binary.BigEndian.AppendUint64(buf, tx.Fee)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(tx.Payload)))
	buf = append(buf, tx.Payload...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(tx.PublicKey)))
	buf = append(buf, tx.PublicKey...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(tx.Signature)))
	buf = append(buf, tx.Signature...)
	return buf
}

// EncodedSize returns len(tx.Encode()) without allocating.
func (tx *Transaction) EncodedSize() int {
	return 2*blockcrypto.HashSize + 24 + 4 + len(tx.Payload) + 2 + len(tx.PublicKey) + 2 + len(tx.Signature)
}

// DecodeTransaction parses one transaction from the front of data and
// returns it along with the number of bytes consumed.
func DecodeTransaction(data []byte) (*Transaction, int, error) {
	fixed := 2*blockcrypto.HashSize + 24 + 4
	if len(data) < fixed {
		return nil, 0, ErrTxTruncated
	}
	var tx Transaction
	off := 0
	copy(tx.From[:], data[off:])
	off += blockcrypto.HashSize
	copy(tx.To[:], data[off:])
	off += blockcrypto.HashSize
	tx.Amount = binary.BigEndian.Uint64(data[off:])
	off += 8
	tx.Nonce = binary.BigEndian.Uint64(data[off:])
	off += 8
	tx.Fee = binary.BigEndian.Uint64(data[off:])
	off += 8
	payloadLen := int(binary.BigEndian.Uint32(data[off:]))
	off += 4
	if len(data) < off+payloadLen+2 {
		return nil, 0, ErrTxTruncated
	}
	if payloadLen > 0 {
		tx.Payload = append([]byte(nil), data[off:off+payloadLen]...)
	}
	off += payloadLen
	pubLen := int(binary.BigEndian.Uint16(data[off:]))
	off += 2
	if len(data) < off+pubLen+2 {
		return nil, 0, ErrTxTruncated
	}
	if pubLen > 0 {
		tx.PublicKey = append([]byte(nil), data[off:off+pubLen]...)
	}
	off += pubLen
	sigLen := int(binary.BigEndian.Uint16(data[off:]))
	off += 2
	if len(data) < off+sigLen {
		return nil, 0, ErrTxTruncated
	}
	if sigLen > 0 {
		tx.Signature = append([]byte(nil), data[off:off+sigLen]...)
	}
	off += sigLen
	return &tx, off, nil
}
