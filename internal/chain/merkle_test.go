package chain

import (
	"fmt"
	"testing"
	"testing/quick"

	"icistrategy/internal/blockcrypto"
)

func leavesOf(n int) []blockcrypto.Hash {
	out := make([]blockcrypto.Hash, n)
	for i := range out {
		out[i] = blockcrypto.Sum256([]byte(fmt.Sprintf("leaf-%d", i)))
	}
	return out
}

func TestMerkleEmptyRejected(t *testing.T) {
	if _, err := NewMerkleTree(nil); err == nil {
		t.Fatal("empty tree accepted")
	}
}

func TestMerkleSingleLeaf(t *testing.T) {
	leaves := leavesOf(1)
	tree, err := NewMerkleTree(leaves)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Root() != leaves[0] {
		t.Fatal("single-leaf root should be the leaf itself")
	}
	proof, err := tree.Prove(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof.Steps) != 0 {
		t.Fatalf("single-leaf proof has %d steps, want 0", len(proof.Steps))
	}
	if err := VerifyProof(tree.Root(), leaves[0], proof); err != nil {
		t.Fatal(err)
	}
}

func TestMerkleAllProofsVerify(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 33, 100} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			leaves := leavesOf(n)
			tree, err := NewMerkleTree(leaves)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				proof, err := tree.Prove(i)
				if err != nil {
					t.Fatalf("Prove(%d): %v", i, err)
				}
				if err := VerifyProof(tree.Root(), leaves[i], proof); err != nil {
					t.Fatalf("proof for leaf %d rejected: %v", i, err)
				}
			}
		})
	}
}

func TestMerkleProofRejectsWrongLeaf(t *testing.T) {
	leaves := leavesOf(10)
	tree, _ := NewMerkleTree(leaves)
	proof, _ := tree.Prove(3)
	if err := VerifyProof(tree.Root(), leaves[4], proof); err == nil {
		t.Fatal("proof for leaf 3 verified leaf 4")
	}
}

func TestMerkleProofRejectsWrongRoot(t *testing.T) {
	leaves := leavesOf(10)
	tree, _ := NewMerkleTree(leaves)
	proof, _ := tree.Prove(3)
	badRoot := blockcrypto.Sum256([]byte("not the root"))
	if err := VerifyProof(badRoot, leaves[3], proof); err == nil {
		t.Fatal("proof verified against wrong root")
	}
}

func TestMerkleProofRejectsTamperedStep(t *testing.T) {
	leaves := leavesOf(16)
	tree, _ := NewMerkleTree(leaves)
	proof, _ := tree.Prove(5)
	proof.Steps[1].Sibling[0] ^= 1
	if err := VerifyProof(tree.Root(), leaves[5], proof); err == nil {
		t.Fatal("tampered proof accepted")
	}
}

func TestMerkleProofRejectsFlippedSide(t *testing.T) {
	leaves := leavesOf(16)
	tree, _ := NewMerkleTree(leaves)
	proof, _ := tree.Prove(5)
	proof.Steps[0].Left = !proof.Steps[0].Left
	if err := VerifyProof(tree.Root(), leaves[5], proof); err == nil {
		t.Fatal("side-flipped proof accepted")
	}
}

func TestMerkleProveOutOfRange(t *testing.T) {
	tree, _ := NewMerkleTree(leavesOf(4))
	for _, i := range []int{-1, 4, 100} {
		if _, err := tree.Prove(i); err == nil {
			t.Fatalf("Prove(%d) succeeded", i)
		}
	}
}

func TestMerkleProofTooLargeRejected(t *testing.T) {
	leaf := blockcrypto.Sum256([]byte("x"))
	proof := Proof{Steps: make([]ProofStep, maxProofDepth+1)}
	if err := VerifyProof(leaf, leaf, proof); err != ErrProofTooLarge {
		t.Fatalf("got %v, want ErrProofTooLarge", err)
	}
}

func TestMerkleRootSensitiveToAnyLeaf(t *testing.T) {
	f := func(seed uint8, idx uint8) bool {
		n := int(seed%31) + 2
		leaves := leavesOf(n)
		tree, _ := NewMerkleTree(leaves)
		i := int(idx) % n
		mutated := append([]blockcrypto.Hash(nil), leaves...)
		mutated[i][0] ^= 0xff
		tree2, _ := NewMerkleTree(mutated)
		return tree.Root() != tree2.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMerkleProofSizeLogarithmic(t *testing.T) {
	tree, _ := NewMerkleTree(leavesOf(1024))
	proof, _ := tree.Prove(512)
	if len(proof.Steps) != 10 {
		t.Fatalf("1024-leaf proof has %d steps, want 10", len(proof.Steps))
	}
	if got := proof.EncodedSize(); got != 4+10*(blockcrypto.HashSize+1) {
		t.Fatalf("EncodedSize() = %d", got)
	}
}

func TestMerkleDeterministic(t *testing.T) {
	a, _ := NewMerkleTree(leavesOf(37))
	b, _ := NewMerkleTree(leavesOf(37))
	if a.Root() != b.Root() {
		t.Fatal("same leaves produced different roots")
	}
}

func BenchmarkMerkleBuild1024(b *testing.B) {
	leaves := leavesOf(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewMerkleTree(leaves); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerkleProveVerify(b *testing.B) {
	tree, _ := NewMerkleTree(leavesOf(1024))
	leaves := leavesOf(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		idx := i % 1024
		proof, err := tree.Prove(idx)
		if err != nil {
			b.Fatal(err)
		}
		if err := VerifyProof(tree.Root(), leaves[idx], proof); err != nil {
			b.Fatal(err)
		}
	}
}
