package chain

import (
	"testing"
	"testing/quick"

	"icistrategy/internal/blockcrypto"
)

func TestDecodeHeaderNoPanicOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeHeader(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBlockNoPanicOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeBlock(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBodyNoPanicOnGarbage(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeBody(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestDecodeBlockBitFlips flips single bits of a valid encoding: decoding
// must either fail or produce a block that no longer passes VerifyShape
// with the original hash — silent corruption is the one forbidden outcome.
func TestDecodeBlockBitFlips(t *testing.T) {
	b := newTestBlock(t, 0, blockcrypto.ZeroHash, 6)
	enc := b.Encode()
	orig := b.Hash()
	for bit := 0; bit < len(enc)*8; bit += 97 {
		mut := append([]byte(nil), enc...)
		mut[bit/8] ^= 1 << (bit % 8)
		got, err := DecodeBlock(mut)
		if err != nil {
			continue
		}
		if got.Hash() == orig && got.VerifyShape() == nil {
			// Header unchanged and the body still matches the root: the
			// flip must therefore have been inside a signature and the
			// transaction set unchanged — but any body flip changes tx
			// IDs, so this means the encoding was not actually mutated.
			same := true
			for i := range enc {
				if enc[i] != mut[i] {
					same = false
					break
				}
			}
			if !same {
				t.Fatalf("bit %d: silent corruption survived shape verification", bit)
			}
		}
	}
}

// TestLedgerRandomWorkloadInvariants drives a ledger with a random but
// well-formed workload and checks the global invariants: balances never
// negative (enforced by construction of uint64 + checks), total supply
// never increases, nonces strictly sequential.
func TestLedgerRandomWorkloadInvariants(t *testing.T) {
	rng := blockcrypto.NewRNG(31415)
	l, keys, ids := ledgerFixture(t, 8, 1000)
	supply := l.TotalSupply()
	nonces := make([]uint64, len(ids))
	prev := blockcrypto.ZeroHash
	for h := uint64(0); h < 30; h++ {
		n := rng.Intn(5) + 1
		txs := make([]*Transaction, 0, n)
		for i := 0; i < n; i++ {
			from := rng.Intn(len(ids))
			to := (from + 1 + rng.Intn(len(ids)-1)) % len(ids)
			amount := uint64(rng.Intn(20)) + 1
			// Keep the sender solvent through the whole block: at most 5
			// txs of at most 21 units each can draw on the same pre-block
			// balance.
			if l.Account(ids[from]).Balance < amount+1+21*5 {
				continue
			}
			tx := signedTransfer(keys, ids, from, to, amount, nonces[from])
			nonces[from]++
			txs = append(txs, tx)
		}
		if len(txs) == 0 {
			continue
		}
		b := mustBlock(t, l.Height(), prev, txs)
		if err := l.ApplyBlock(b); err != nil {
			t.Fatalf("height %d: %v", h, err)
		}
		prev = b.Hash()
		if s := l.TotalSupply(); s > supply {
			t.Fatalf("supply grew: %d -> %d", supply, s)
		} else {
			supply = s
		}
		for i, id := range ids {
			if got := l.Account(id).Nonce; got != nonces[i] {
				t.Fatalf("account %d nonce %d, expected %d", i, got, nonces[i])
			}
		}
	}
}
