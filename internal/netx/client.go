package netx

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/simnet"
	"icistrategy/internal/trace"
)

// Client errors.
var (
	ErrClosed          = errors.New("netx: client closed")
	ErrIncompleteBlock = errors.New("netx: could not gather every chunk")
	ErrNoServers       = errors.New("netx: no servers configured")
)

// dialTimeout bounds connection establishment.
const dialTimeout = 5 * time.Second

// DefaultRPCTimeout bounds one request/response round trip when the caller
// does not override it with SetTimeout. Without a per-call deadline, one
// stalled peer (accepted the connection, never answers) parks the caller —
// and everything queued behind it — forever.
const DefaultRPCTimeout = 15 * time.Second

// Client is a connection to one storage server, safe for sequential use;
// Cluster (below) multiplexes clients for whole-cluster operations.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	timeout time.Duration
	tr      *trace.Tracer
	parent  trace.SpanID
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("netx: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, timeout: DefaultRPCTimeout}, nil
}

// SetTimeout overrides the per-round-trip I/O deadline; d <= 0 restores the
// default. A round trip that blows its deadline poisons the connection (a
// frame may be half-written), so the error is terminal for this Client —
// Cluster drops and re-dials failed connections.
func (c *Client) SetTimeout(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		d = DefaultRPCTimeout
	}
	c.timeout = d
}

// Close tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// roundTrip sends one request and reads one response under the per-call
// I/O deadline (see SetTimeout): both the write and the read must complete
// before it passes, so a stalled or half-dead peer surfaces as
// os.ErrDeadlineExceeded instead of hanging the caller. With a tracer
// installed, each round-trip is one span carrying the wire bytes it moved
// in both directions.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, ErrClosed
	}
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, fmt.Errorf("netx: arm deadline: %w", err)
	}
	var rw io.ReadWriter = c.conn
	var sp trace.Span
	var cw *countConn
	if c.tr.Enabled() {
		cw = &countConn{rw: c.conn}
		rw = cw
		sp = c.tr.Start(c.parent, "netx", reqName(req), clientNode)
	}
	finish := func(err error) {
		if cw != nil {
			sp.AddBytes(cw.n)
		}
		sp.SetErr(err)
		sp.End()
	}
	if err := writeMessage(rw, req); err != nil {
		finish(err)
		return nil, err
	}
	var resp Response
	if err := readMessage(rw, &resp); err != nil {
		finish(err)
		return nil, err
	}
	finish(nil)
	return &resp, nil
}

// PutHeader stores a header on the server.
func (c *Client) PutHeader(h chain.Header) error {
	resp, err := c.roundTrip(&Request{PutHeader: &PutHeaderReq{Header: h}})
	if err != nil {
		return err
	}
	return respError(resp)
}

// PutChunk stores a verified chunk on the server.
func (c *Client) PutChunk(req PutChunkReq) error {
	resp, err := c.roundTrip(&Request{PutChunk: &req})
	if err != nil {
		return err
	}
	return respError(resp)
}

// GetHeaders fetches all headers at or above fromHeight.
func (c *Client) GetHeaders(fromHeight uint64) ([]chain.Header, error) {
	resp, err := c.roundTrip(&Request{GetHeaders: &GetHeadersReq{FromHeight: fromHeight}})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	return resp.Headers, nil
}

// GetChunk fetches one chunk.
func (c *Client) GetChunk(block blockcrypto.Hash, index int) (*ChunkResp, error) {
	resp, err := c.roundTrip(&Request{GetChunk: &GetChunkReq{Block: block, Index: index}})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if resp.Chunk == nil {
		return nil, ErrNotFound
	}
	return resp.Chunk, nil
}

// GetChunkBatch fetches several chunks (possibly of different blocks) in a
// single round trip. The response answers position-for-position; chunks the
// server does not hold come back with Found false rather than failing the
// whole batch.
func (c *Client) GetChunkBatch(refs []ChunkRef) (*ChunkBatchResp, error) {
	resp, err := c.roundTrip(&Request{GetChunkBatch: &ChunkBatchReq{Refs: refs}})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if resp.ChunkBatch == nil || len(resp.ChunkBatch.Found) != len(refs) || len(resp.ChunkBatch.Chunks) != len(refs) {
		return nil, ErrBadRequest
	}
	return resp.ChunkBatch, nil
}

// GetTxProof asks the server for a transaction plus its stored Merkle proof.
// Found false means this server's chunks do not contain the transaction.
func (c *Client) GetTxProof(block, txID blockcrypto.Hash) (*TxProofResp, error) {
	resp, err := c.roundTrip(&Request{GetTxProof: &TxProofReq{Block: block, TxID: txID}})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if resp.TxProof == nil {
		return nil, ErrBadRequest
	}
	return resp.TxProof, nil
}

// GetBlockChunks fetches every chunk the server holds for a block.
func (c *Client) GetBlockChunks(block blockcrypto.Hash) (*BlockChunksResp, error) {
	resp, err := c.roundTrip(&Request{GetBlockChunks: &GetBlockChunksReq{Block: block}})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if resp.BlockChunks == nil {
		return nil, ErrNotFound
	}
	return resp.BlockChunks, nil
}

// Stats fetches the server's storage accounting.
func (c *Client) Stats() (*StatsResp, error) {
	resp, err := c.roundTrip(&Request{Stats: &StatsReq{}})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, ErrBadRequest
	}
	return resp.Stats, nil
}

// Cluster drives a whole ICIStrategy cluster of TCP storage servers: it
// applies the same rendezvous placement as the simulator's protocol layer
// to distribute blocks, and reassembles them with Merkle-root verification
// on reads.
type Cluster struct {
	addrs       []string
	ids         []simnet.NodeID // placement identities, parallel to addrs
	replication int

	mu      sync.Mutex
	clients map[string]*Client
	timeout time.Duration // per-round-trip deadline applied to every client
	tr      *trace.Tracer
}

// NewCluster wires a cluster client over the given server addresses.
func NewCluster(addrs []string, replication int) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, ErrNoServers
	}
	if replication < 1 || replication > len(addrs) {
		return nil, fmt.Errorf("netx: replication %d with %d servers", replication, len(addrs))
	}
	ids := make([]simnet.NodeID, len(addrs))
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	return &Cluster{
		addrs:       addrs,
		ids:         ids,
		replication: replication,
		clients:     make(map[string]*Client),
		timeout:     DefaultRPCTimeout,
	}, nil
}

// SetTimeout sets the per-round-trip deadline applied to every connection
// the cluster opens (and those already open); d <= 0 restores the default.
func (cl *Cluster) SetTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultRPCTimeout
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.timeout = d
	for _, c := range cl.clients {
		c.SetTimeout(d)
	}
}

// Close closes all cached connections.
func (cl *Cluster) Close() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, c := range cl.clients {
		_ = c.Close()
	}
	cl.clients = make(map[string]*Client)
}

// client returns a cached or fresh connection to addr.
func (cl *Cluster) client(addr string) (*Client, error) {
	cl.mu.Lock()
	if c, ok := cl.clients[addr]; ok {
		cl.mu.Unlock()
		return c, nil
	}
	cl.mu.Unlock()
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if existing, ok := cl.clients[addr]; ok {
		_ = c.Close()
		return existing, nil
	}
	c.SetTimeout(cl.timeout)
	cl.clients[addr] = c
	return c, nil
}

// dropClient evicts a cached connection after a transport failure.
func (cl *Cluster) dropClient(addr string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if c, ok := cl.clients[addr]; ok {
		_ = c.Close()
		delete(cl.clients, addr)
	}
}

// DistributeBlock stores a block across the cluster: the header goes to
// every server, and each transaction-group chunk (with Merkle proofs) to
// its rendezvous owners.
func (cl *Cluster) DistributeBlock(b *chain.Block) error {
	span := cl.tracer().Start(0, "distribute", "distribute-block", clientNode)
	span.AddBytes(int64(b.BodySize()))
	err := cl.distributeBlock(b, span.Context())
	span.SetErr(err)
	span.End()
	return err
}

func (cl *Cluster) distributeBlock(b *chain.Block, parent trace.SpanID) error {
	tree, err := chain.TxMerkleTree(b.Txs)
	if err != nil {
		return err
	}
	hdr := b.Header
	for _, addr := range cl.addrs {
		c, err := cl.tracedClient(addr, parent)
		if err != nil {
			return err
		}
		if err := c.PutHeader(hdr); err != nil {
			cl.dropClient(addr)
			return fmt.Errorf("put header to %s: %w", addr, err)
		}
	}
	parts := len(cl.addrs)
	counts, err := core.SplitCounts(len(b.Txs), parts)
	if err != nil {
		return err
	}
	seed := b.Hash().Uint64()
	txStart := 0
	for idx := 0; idx < parts; idx++ {
		group := b.Txs[txStart : txStart+counts[idx]]
		proofs := make([]chain.Proof, len(group))
		for i := range group {
			p, perr := tree.Prove(txStart + i)
			if perr != nil {
				return perr
			}
			proofs[i] = p
		}
		sub := chain.Block{Txs: group}
		req := PutChunkReq{
			Block:   b.Hash(),
			Index:   idx,
			Parts:   parts,
			TxStart: txStart,
			Data:    sub.EncodeBody(),
			Proofs:  proofs,
		}
		owners, oerr := core.Owners(seed, cl.ids, idx, cl.replication)
		if oerr != nil {
			return oerr
		}
		for _, o := range owners {
			addr := cl.addrs[int(o)]
			c, cerr := cl.tracedClient(addr, parent)
			if cerr != nil {
				return cerr
			}
			if err := c.PutChunk(req); err != nil {
				cl.dropClient(addr)
				return fmt.Errorf("put chunk %d to %s: %w", idx, addr, err)
			}
		}
		txStart += counts[idx]
	}
	return nil
}

// RetrieveBlock gathers the block's chunks from the cluster (skipping
// unreachable servers), reassembles, and verifies the Merkle root against
// the expected header.
func (cl *Cluster) RetrieveBlock(hdr chain.Header) (*chain.Block, error) {
	span := cl.tracer().Start(0, "retrieve", "retrieve-block", clientNode)
	b, err := cl.retrieveBlock(hdr, span.Context())
	if b != nil {
		span.AddBytes(int64(b.BodySize()))
	}
	span.SetErr(err)
	span.End()
	return b, err
}

func (cl *Cluster) retrieveBlock(hdr chain.Header, parent trace.SpanID) (*chain.Block, error) {
	block := hdr.Hash()
	found := make(map[int][]*chain.Transaction)
	starts := make(map[int]int)
	parts := 0
	for _, addr := range cl.addrs {
		c, err := cl.tracedClient(addr, parent)
		if err != nil {
			continue // dead server: degraded read
		}
		resp, err := c.GetBlockChunks(block)
		if err != nil {
			cl.dropClient(addr)
			continue
		}
		if resp.Parts > 0 {
			parts = resp.Parts
		}
		for _, chk := range resp.Chunks {
			if _, ok := found[chk.Index]; ok {
				continue
			}
			txs, derr := chain.DecodeBody(chk.Data)
			if derr != nil {
				continue
			}
			found[chk.Index] = txs
			starts[chk.Index] = chk.TxStart
		}
		if parts > 0 && len(found) == parts {
			break
		}
	}
	if parts == 0 || len(found) < parts {
		return nil, fmt.Errorf("%w: have %d of %d", ErrIncompleteBlock, len(found), parts)
	}
	idxs := make([]int, 0, len(found))
	for i := range found {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var txs []*chain.Transaction
	for _, i := range idxs {
		txs = append(txs, found[i]...)
	}
	b := &chain.Block{Header: hdr, Txs: txs}
	if err := b.VerifyShape(); err != nil {
		return nil, fmt.Errorf("netx: reassembly: %w", err)
	}
	return b, nil
}
