package netx

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/simnet"
	"icistrategy/internal/trace"
)

// Client errors.
var (
	ErrClosed          = errors.New("netx: client closed")
	ErrIncompleteBlock = errors.New("netx: could not gather every chunk")
	ErrNoServers       = errors.New("netx: no servers configured")
)

// dialTimeout bounds connection establishment.
const dialTimeout = 5 * time.Second

// Client is a connection to one storage server, safe for sequential use;
// Cluster (below) multiplexes clients for whole-cluster operations.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	tr     *trace.Tracer
	parent trace.SpanID
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("netx: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close tears the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// roundTrip sends one request and reads one response. With a tracer
// installed, each round-trip is one span carrying the wire bytes it moved
// in both directions.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil, ErrClosed
	}
	var rw io.ReadWriter = c.conn
	var sp trace.Span
	var cw *countConn
	if c.tr.Enabled() {
		cw = &countConn{rw: c.conn}
		rw = cw
		sp = c.tr.Start(c.parent, "netx", reqName(req), clientNode)
	}
	finish := func(err error) {
		if cw != nil {
			sp.AddBytes(cw.n)
		}
		sp.SetErr(err)
		sp.End()
	}
	if err := writeMessage(rw, req); err != nil {
		finish(err)
		return nil, err
	}
	var resp Response
	if err := readMessage(rw, &resp); err != nil {
		finish(err)
		return nil, err
	}
	finish(nil)
	return &resp, nil
}

// PutHeader stores a header on the server.
func (c *Client) PutHeader(h chain.Header) error {
	resp, err := c.roundTrip(&Request{PutHeader: &PutHeaderReq{Header: h}})
	if err != nil {
		return err
	}
	return respError(resp)
}

// PutChunk stores a verified chunk on the server.
func (c *Client) PutChunk(req PutChunkReq) error {
	resp, err := c.roundTrip(&Request{PutChunk: &req})
	if err != nil {
		return err
	}
	return respError(resp)
}

// GetHeaders fetches all headers at or above fromHeight.
func (c *Client) GetHeaders(fromHeight uint64) ([]chain.Header, error) {
	resp, err := c.roundTrip(&Request{GetHeaders: &GetHeadersReq{FromHeight: fromHeight}})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	return resp.Headers, nil
}

// GetChunk fetches one chunk.
func (c *Client) GetChunk(block blockcrypto.Hash, index int) (*ChunkResp, error) {
	resp, err := c.roundTrip(&Request{GetChunk: &GetChunkReq{Block: block, Index: index}})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if resp.Chunk == nil {
		return nil, ErrNotFound
	}
	return resp.Chunk, nil
}

// GetBlockChunks fetches every chunk the server holds for a block.
func (c *Client) GetBlockChunks(block blockcrypto.Hash) (*BlockChunksResp, error) {
	resp, err := c.roundTrip(&Request{GetBlockChunks: &GetBlockChunksReq{Block: block}})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if resp.BlockChunks == nil {
		return nil, ErrNotFound
	}
	return resp.BlockChunks, nil
}

// Stats fetches the server's storage accounting.
func (c *Client) Stats() (*StatsResp, error) {
	resp, err := c.roundTrip(&Request{Stats: &StatsReq{}})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, ErrBadRequest
	}
	return resp.Stats, nil
}

// Cluster drives a whole ICIStrategy cluster of TCP storage servers: it
// applies the same rendezvous placement as the simulator's protocol layer
// to distribute blocks, and reassembles them with Merkle-root verification
// on reads.
type Cluster struct {
	addrs       []string
	ids         []simnet.NodeID // placement identities, parallel to addrs
	replication int

	mu      sync.Mutex
	clients map[string]*Client
	tr      *trace.Tracer
}

// NewCluster wires a cluster client over the given server addresses.
func NewCluster(addrs []string, replication int) (*Cluster, error) {
	if len(addrs) == 0 {
		return nil, ErrNoServers
	}
	if replication < 1 || replication > len(addrs) {
		return nil, fmt.Errorf("netx: replication %d with %d servers", replication, len(addrs))
	}
	ids := make([]simnet.NodeID, len(addrs))
	for i := range ids {
		ids[i] = simnet.NodeID(i)
	}
	return &Cluster{
		addrs:       addrs,
		ids:         ids,
		replication: replication,
		clients:     make(map[string]*Client),
	}, nil
}

// Close closes all cached connections.
func (cl *Cluster) Close() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	for _, c := range cl.clients {
		_ = c.Close()
	}
	cl.clients = make(map[string]*Client)
}

// client returns a cached or fresh connection to addr.
func (cl *Cluster) client(addr string) (*Client, error) {
	cl.mu.Lock()
	if c, ok := cl.clients[addr]; ok {
		cl.mu.Unlock()
		return c, nil
	}
	cl.mu.Unlock()
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if existing, ok := cl.clients[addr]; ok {
		_ = c.Close()
		return existing, nil
	}
	cl.clients[addr] = c
	return c, nil
}

// dropClient evicts a cached connection after a transport failure.
func (cl *Cluster) dropClient(addr string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if c, ok := cl.clients[addr]; ok {
		_ = c.Close()
		delete(cl.clients, addr)
	}
}

// DistributeBlock stores a block across the cluster: the header goes to
// every server, and each transaction-group chunk (with Merkle proofs) to
// its rendezvous owners.
func (cl *Cluster) DistributeBlock(b *chain.Block) error {
	span := cl.tracer().Start(0, "distribute", "distribute-block", clientNode)
	span.AddBytes(int64(b.BodySize()))
	err := cl.distributeBlock(b, span.Context())
	span.SetErr(err)
	span.End()
	return err
}

func (cl *Cluster) distributeBlock(b *chain.Block, parent trace.SpanID) error {
	tree, err := chain.TxMerkleTree(b.Txs)
	if err != nil {
		return err
	}
	hdr := b.Header
	for _, addr := range cl.addrs {
		c, err := cl.tracedClient(addr, parent)
		if err != nil {
			return err
		}
		if err := c.PutHeader(hdr); err != nil {
			cl.dropClient(addr)
			return fmt.Errorf("put header to %s: %w", addr, err)
		}
	}
	parts := len(cl.addrs)
	counts, err := core.SplitCounts(len(b.Txs), parts)
	if err != nil {
		return err
	}
	seed := b.Hash().Uint64()
	txStart := 0
	for idx := 0; idx < parts; idx++ {
		group := b.Txs[txStart : txStart+counts[idx]]
		proofs := make([]chain.Proof, len(group))
		for i := range group {
			p, perr := tree.Prove(txStart + i)
			if perr != nil {
				return perr
			}
			proofs[i] = p
		}
		sub := chain.Block{Txs: group}
		req := PutChunkReq{
			Block:   b.Hash(),
			Index:   idx,
			Parts:   parts,
			TxStart: txStart,
			Data:    sub.EncodeBody(),
			Proofs:  proofs,
		}
		owners, oerr := core.Owners(seed, cl.ids, idx, cl.replication)
		if oerr != nil {
			return oerr
		}
		for _, o := range owners {
			addr := cl.addrs[int(o)]
			c, cerr := cl.tracedClient(addr, parent)
			if cerr != nil {
				return cerr
			}
			if err := c.PutChunk(req); err != nil {
				cl.dropClient(addr)
				return fmt.Errorf("put chunk %d to %s: %w", idx, addr, err)
			}
		}
		txStart += counts[idx]
	}
	return nil
}

// RetrieveBlock gathers the block's chunks from the cluster (skipping
// unreachable servers), reassembles, and verifies the Merkle root against
// the expected header.
func (cl *Cluster) RetrieveBlock(hdr chain.Header) (*chain.Block, error) {
	span := cl.tracer().Start(0, "retrieve", "retrieve-block", clientNode)
	b, err := cl.retrieveBlock(hdr, span.Context())
	if b != nil {
		span.AddBytes(int64(b.BodySize()))
	}
	span.SetErr(err)
	span.End()
	return b, err
}

func (cl *Cluster) retrieveBlock(hdr chain.Header, parent trace.SpanID) (*chain.Block, error) {
	block := hdr.Hash()
	found := make(map[int][]*chain.Transaction)
	starts := make(map[int]int)
	parts := 0
	for _, addr := range cl.addrs {
		c, err := cl.tracedClient(addr, parent)
		if err != nil {
			continue // dead server: degraded read
		}
		resp, err := c.GetBlockChunks(block)
		if err != nil {
			cl.dropClient(addr)
			continue
		}
		if resp.Parts > 0 {
			parts = resp.Parts
		}
		for _, chk := range resp.Chunks {
			if _, ok := found[chk.Index]; ok {
				continue
			}
			txs, derr := chain.DecodeBody(chk.Data)
			if derr != nil {
				continue
			}
			found[chk.Index] = txs
			starts[chk.Index] = chk.TxStart
		}
		if parts > 0 && len(found) == parts {
			break
		}
	}
	if parts == 0 || len(found) < parts {
		return nil, fmt.Errorf("%w: have %d of %d", ErrIncompleteBlock, len(found), parts)
	}
	idxs := make([]int, 0, len(found))
	for i := range found {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var txs []*chain.Transaction
	for _, i := range idxs {
		txs = append(txs, found[i]...)
	}
	b := &chain.Block{Header: hdr, Txs: txs}
	if err := b.VerifyShape(); err != nil {
		return nil, fmt.Errorf("netx: reassembly: %w", err)
	}
	return b, nil
}
