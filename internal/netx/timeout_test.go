package netx

import (
	"errors"
	"net"
	"os"
	"testing"
	"time"

	"icistrategy/internal/blockcrypto"
)

// stalledServer accepts connections and reads forever without ever writing
// a response — the pathological peer the roundTrip deadline exists for.
func stalledServer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return l.Addr().String()
}

// TestRoundTripDeadlineAgainstStalledServer is the regression test for the
// unbounded-read bug: roundTrip used to perform its read with no I/O
// deadline, so a peer that accepted the request but never answered parked
// the caller forever. With the per-call deadline the call must fail within
// the configured timeout, with os.ErrDeadlineExceeded in the chain.
func TestRoundTripDeadlineAgainstStalledServer(t *testing.T) {
	addr := stalledServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(150 * time.Millisecond)

	start := time.Now()
	_, err = c.GetChunk(blockcrypto.Hash{1}, 0)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("round trip against a stalled server succeeded")
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("want deadline error, got %v", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("deadline fired after %v; the stall was not bounded by the timeout", elapsed)
	}
}

// TestClusterTimeoutPropagates proves SetTimeout reaches both already-open
// and future connections, and that a cluster read degrades around a stalled
// member instead of hanging (the gateway depends on exactly this).
func TestClusterTimeoutPropagates(t *testing.T) {
	_, addrs := startServers(t, 3)
	stalled := stalledServer(t)
	cl, err := NewCluster(append(addrs, stalled), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTimeout(150 * time.Millisecond)

	blocks := testBlocks(t, 1, 12)
	// Distribution writes to every member including the stalled one; it must
	// fail fast rather than hang.
	start := time.Now()
	err = cl.DistributeBlock(blocks[0])
	if err == nil {
		t.Fatal("distribute through a stalled member succeeded")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("distribute was not bounded by the cluster timeout")
	}
}

func TestSetTimeoutZeroRestoresDefault(t *testing.T) {
	_, addrs := startServers(t, 1)
	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetTimeout(-1)
	c.mu.Lock()
	got := c.timeout
	c.mu.Unlock()
	if got != DefaultRPCTimeout {
		t.Fatalf("timeout = %v, want default %v", got, DefaultRPCTimeout)
	}
}
