// Package netx runs the ICIStrategy storage protocol over real TCP: every
// cluster member is a Server owning a chunk/header store, and clients
// (block distributors, readers, bootstrapping nodes) speak a length-prefixed
// gob protocol to it. The discrete-event simulator (internal/simnet) is the
// tool for measuring the strategy at scale; netx exists to prove the same
// storage layout, placement, and verification logic works end-to-end on a
// real network stack, and to power the cmd/icinet demo.
package netx

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
)

// Protocol errors.
var (
	ErrTooLarge   = errors.New("netx: message exceeds size limit")
	ErrBadRequest = errors.New("netx: malformed request")
	ErrNotFound   = errors.New("netx: not found")
)

// maxMessageSize bounds a single protocol message (64 MiB — far above any
// realistic block).
const maxMessageSize = 64 << 20

// Request is the union of client requests; exactly one field is set.
type Request struct {
	PutHeader      *PutHeaderReq
	PutChunk       *PutChunkReq
	GetHeaders     *GetHeadersReq
	GetChunk       *GetChunkReq
	GetChunkBatch  *ChunkBatchReq
	GetBlockChunks *GetBlockChunksReq
	GetTxProof     *TxProofReq
	GetClusterMap  *ClusterMapReq
	SetClusterMap  *SetClusterMapReq
	Stats          *StatsReq
	Fault          *FaultReq
}

// Response is the union of server responses; Err is set on failure.
type Response struct {
	Err         string
	OK          *struct{}
	Headers     []chain.Header
	Chunk       *ChunkResp
	ChunkBatch  *ChunkBatchResp
	BlockChunks *BlockChunksResp
	TxProof     *TxProofResp
	ClusterMap  *ClusterMapResp
	Stats       *StatsResp
	Faults      *FaultResp
}

// PutHeaderReq stores a block header.
type PutHeaderReq struct {
	Header chain.Header
}

// PutChunkReq stores one chunk of a block's body: the encoded transaction
// group plus the positions and Merkle proofs needed to serve verifiable
// reads later.
type PutChunkReq struct {
	Block   blockcrypto.Hash
	Index   int
	Parts   int
	TxStart int
	Data    []byte // chain sub-body encoding of the transaction group
	Proofs  []chain.Proof
}

// GetHeadersReq fetches all headers at or above FromHeight.
type GetHeadersReq struct {
	FromHeight uint64
}

// GetChunkReq fetches one stored chunk.
type GetChunkReq struct {
	Block blockcrypto.Hash
	Index int
}

// ChunkResp returns a stored chunk.
type ChunkResp struct {
	Index   int
	Parts   int
	TxStart int
	Data    []byte
	Proofs  []chain.Proof
}

// ChunkRef names one stored chunk, possibly of a different block than its
// batch siblings.
type ChunkRef struct {
	Block blockcrypto.Hash
	Index int
}

// ChunkBatchReq fetches several stored chunks in one round trip — the wire
// op behind the gateway's cross-request batching: wants for the same peer
// that accumulate while a round trip is in flight ride the next frame
// together instead of paying one round trip each.
type ChunkBatchReq struct {
	Refs []ChunkRef
}

// maxBatchRefs bounds one batch so a malicious or buggy client cannot make
// the server assemble an unbounded response.
const maxBatchRefs = 4096

// ChunkBatchResp answers a batch fetch position-for-position: Chunks[i]
// answers Refs[i], and Found[i] is false (with a zero Chunks[i]) when this
// server does not hold that chunk. Partial answers are expected — the
// client falls back to the other owners for the holes.
type ChunkBatchResp struct {
	Found  []bool
	Chunks []ChunkResp
}

// TxProofReq asks for the transaction with the given ID inside a block,
// plus the stored Merkle proof connecting it to the block's root — the
// light-client read: no whole block crosses the wire.
type TxProofReq struct {
	Block blockcrypto.Hash
	TxID  blockcrypto.Hash
}

// TxProofResp answers a proof query. Found is false when this server's
// chunks do not contain the transaction (another owner may still hold it).
type TxProofResp struct {
	Found bool
	Tx    *chain.Transaction
	Proof chain.Proof
}

// GetBlockChunksReq fetches every chunk the server holds for a block.
type GetBlockChunksReq struct {
	Block blockcrypto.Hash
}

// BlockChunksResp returns all held chunks of one block.
type BlockChunksResp struct {
	Parts  int
	Chunks []ChunkResp
}

// MemberInfo names one cluster member on the wire: its stable placement
// identity and the address it serves on. The identity — not the address or
// a positional index — is what rendezvous placement hashes, so a member
// that moves or rejoins keeps its chunks.
type MemberInfo struct {
	ID   uint64
	Addr string
}

// EpochInfo is one entry of the epoch-versioned cluster map: the member set
// that governs blocks written at or above FromHeight. The full epoch
// history travels together so readers can resolve any historic block
// against the membership it was written under (same arithmetic as
// core's membership epochs: last entry with FromHeight <= height wins).
type EpochInfo struct {
	Epoch      int
	FromHeight uint64
	Members    []MemberInfo
}

// ClusterMapReq fetches the server's epoch-versioned cluster map.
type ClusterMapReq struct{}

// ClusterMapResp returns the stored cluster map, oldest epoch first. Empty
// when no map was ever published to this server.
type ClusterMapResp struct {
	Epochs []EpochInfo
}

// SetClusterMapReq publishes a cluster map. Servers keep the newest map
// they have seen: a request whose final epoch number does not exceed the
// stored one is acknowledged but ignored, so republishing after partitions
// or restarts is always safe.
type SetClusterMapReq struct {
	Epochs []EpochInfo
}

// maxMapEpochs bounds a published map so a buggy client cannot grow server
// state without limit; real churn histories are far smaller.
const maxMapEpochs = 65536

// StatsReq asks for the server's storage accounting.
type StatsReq struct{}

// StatsResp reports storage usage.
type StatsResp struct {
	HeaderCount int64
	HeaderBytes int64
	ChunkCount  int64
	ChunkBytes  int64
}

// FaultReq is the chaos control op (see faults.go): it installs a fault
// configuration, corrupts already-stored chunks, or both. Servers reject it
// unless EnableChaos was called at startup.
type FaultReq struct {
	// Set installs this fault config (a zero config clears faults).
	Set *FaultConfig
	// CorruptStored flips one byte in every stored chunk, turning this
	// server into a byzantine member whose shards fail verification.
	CorruptStored bool
}

// FaultResp acknowledges a FaultReq.
type FaultResp struct {
	// Corrupted counts the chunks CorruptStored damaged.
	Corrupted int
}

// WriteMessage frames and gob-encodes v onto w with the netx wire format.
// Exported for protocol layers stacked on the same framing (the gateway's
// client-facing listener); servers and clients in this package use the
// unexported forms directly.
func WriteMessage(w io.Writer, v any) error { return writeMessage(w, v) }

// ReadMessage reads one length-prefixed gob message into v (see
// WriteMessage).
func ReadMessage(r io.Reader, v any) error { return readMessage(r, v) }

// writeMessage frames and gob-encodes v onto w: 4-byte big-endian length,
// then the gob bytes.
func writeMessage(w io.Writer, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("netx: encode: %w", err)
	}
	if buf.Len() > maxMessageSize {
		return ErrTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readMessage reads one length-prefixed gob message into v. The body is
// accumulated with io.CopyN rather than allocated up front, so a frame
// header claiming a huge length on a short (or malicious) stream costs only
// the bytes that actually arrive, never a maxMessageSize allocation.
func readMessage(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxMessageSize {
		return ErrTooLarge
	}
	var buf bytes.Buffer
	copied, err := io.CopyN(&buf, r, int64(n))
	if err != nil {
		if err == io.EOF && copied < int64(n) {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	return gob.NewDecoder(&buf).Decode(v)
}
