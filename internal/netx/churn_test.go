package netx

import (
	"strings"
	"testing"
)

func mapServer(t *testing.T) (*Server, *Client) {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return s, c
}

func epoch(n int, from uint64, ids ...uint64) EpochInfo {
	e := EpochInfo{Epoch: n, FromHeight: from}
	for _, id := range ids {
		e.Members = append(e.Members, MemberInfo{ID: id, Addr: "x"})
	}
	return e
}

func TestClusterMapNewestWins(t *testing.T) {
	_, c := mapServer(t)

	// Fresh server: empty map.
	m, err := c.GetClusterMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 0 {
		t.Fatalf("fresh server holds %d epochs", len(m))
	}

	two := []EpochInfo{epoch(0, 0, 1, 2, 3), epoch(1, 9, 1, 2)}
	if err := c.SetClusterMap(two); err != nil {
		t.Fatal(err)
	}
	// A stale (shorter) publish is acknowledged but ignored.
	if err := c.SetClusterMap(two[:1]); err != nil {
		t.Fatal(err)
	}
	m, err = c.GetClusterMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 || m[1].Epoch != 1 || m[1].FromHeight != 9 || len(m[1].Members) != 2 {
		t.Fatalf("map = %+v, want the two-epoch publish intact", m)
	}
	// A newer publish replaces it.
	three := append(append([]EpochInfo(nil), two...), epoch(2, 12, 1, 2, 4))
	if err := c.SetClusterMap(three); err != nil {
		t.Fatal(err)
	}
	m, _ = c.GetClusterMap()
	if len(m) != 3 || m[2].Epoch != 2 {
		t.Fatalf("map = %+v, want three epochs", m)
	}
}

func TestClusterMapRejectsMalformed(t *testing.T) {
	_, c := mapServer(t)
	cases := []struct {
		name   string
		epochs []EpochInfo
	}{
		{"empty", nil},
		{"nonpositional", []EpochInfo{epoch(1, 0, 1)}},
		{"gap", []EpochInfo{epoch(0, 0, 1), epoch(2, 4, 1)}},
		{"memberless epoch", []EpochInfo{{Epoch: 0}}},
	}
	for _, tc := range cases {
		err := c.SetClusterMap(tc.epochs)
		if err == nil || !strings.Contains(err.Error(), "malformed") {
			t.Fatalf("%s: err = %v, want malformed-request rejection", tc.name, err)
		}
	}
	if m, _ := c.GetClusterMap(); len(m) != 0 {
		t.Fatal("rejected publish mutated server state")
	}
}

func TestPublishEpochSynthesizesGenesis(t *testing.T) {
	s1, _ := mapServer(t)
	s2, _ := mapServer(t)
	cl, err := NewCluster([]string{s1.Addr(), s2.Addr()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// No map published anywhere: the first PublishEpoch synthesizes epoch 0
	// from the constructor roster and appends the new membership as epoch 1.
	n, err := cl.PublishEpoch([]MemberInfo{{ID: 0, Addr: s1.Addr()}})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("epoch = %d, want 1", n)
	}
	c, err := Dial(s2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	m, err := c.GetClusterMap()
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 2 {
		t.Fatalf("map has %d epochs, want 2", len(m))
	}
	if len(m[0].Members) != 2 || m[0].Members[0].Addr != s1.Addr() {
		t.Fatalf("genesis epoch = %+v, want the constructor roster", m[0])
	}
	if len(m[1].Members) != 1 || m[1].FromHeight != 0 {
		t.Fatalf("epoch 1 = %+v, want one member from height 0 (no headers yet)", m[1])
	}

	// RetireMember refuses addresses outside the roster and the last member.
	if _, err := cl.RetireMember("127.0.0.1:1"); err == nil {
		t.Fatal("retired a non-member")
	}
	solo, err := NewCluster([]string{s1.Addr()}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	if _, err := solo.RetireMember(s1.Addr()); err == nil {
		t.Fatal("retired the last member")
	}
}
