package netx

import (
	"testing"

	"icistrategy/internal/trace"
)

// TestClusterTracing drives a distribute + retrieve over real TCP with a
// tracer installed and checks that both ends record their spans: the
// cluster-level phase spans, one child span per client round-trip with real
// wire bytes, and one serve point per handled request on the servers.
func TestClusterTracing(t *testing.T) {
	ring := trace.NewRing(4096)
	tr := trace.New(ring)

	servers, addrs := startServers(t, 4)
	for _, s := range servers {
		s.SetTracer(tr)
	}
	cl, err := NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTracer(tr)

	b := testBlocks(t, 1, 24)[0]
	if err := cl.DistributeBlock(b); err != nil {
		t.Fatal(err)
	}
	got, err := cl.RetrieveBlock(b.Header)
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash() != b.Hash() {
		t.Fatal("retrieved block mismatch")
	}

	events := ring.Events()
	byName := make(map[string]int)
	roots := make(map[string]trace.SpanID)
	var rpcBytes int64
	for _, e := range events {
		byName[e.Name]++
		if e.Parent == 0 && !e.Point {
			roots[e.Name] = e.ID
		}
		if e.Proto == "netx" && !e.Point {
			rpcBytes += e.Bytes
			if e.Parent == 0 {
				t.Errorf("round-trip span %q has no parent phase", e.Name)
			}
		}
	}
	if roots["distribute-block"] == 0 || roots["retrieve-block"] == 0 {
		t.Fatalf("missing phase root spans; recorded names: %v", byName)
	}
	// 4 put-header round-trips, 2 replicas × parts put-chunks, ≥1
	// get-block-chunks.
	if byName["put-header"] != 4 {
		t.Errorf("put-header spans = %d, want 4", byName["put-header"])
	}
	if byName["put-chunk"] == 0 || byName["get-block-chunks"] == 0 {
		t.Errorf("missing round-trip spans: %v", byName)
	}
	if rpcBytes == 0 {
		t.Error("round-trip spans carry no wire bytes")
	}
	// Server-side points mirror the client round-trips.
	if byName["serve:put-header"] != 4 || byName["serve:put-chunk"] != byName["put-chunk"] {
		t.Errorf("server points do not mirror client round-trips: %v", byName)
	}
}
