package netx

import (
	"fmt"

	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/simnet"
)

// This file is the real-TCP bootstrap path: provisioning a storage server
// with the headers and chunks it is responsible for, fetched from live
// cluster members, verify-on-write. Two entry points share the machinery:
//
//   - BootstrapNewMember: a brand-new node joins a cluster of N as member
//     N — ownership is computed under the grown membership (the
//     re-placement case).
//   - ResyncMember: an existing member restarted with an empty store
//     re-fetches the chunks it owns under the unchanged membership (the
//     crash-recovery case).

// BootstrapNewMember provisions a brand-new storage server as the next
// member of this cluster, over TCP: it syncs every header from an existing
// member (validating the hash chain), computes which chunks the newcomer
// owns under the grown membership with the same rendezvous placement the
// simulator's join protocol uses, fetches each from a current owner, and
// pushes it — verify-on-write — into the new server. It returns how many
// chunks were transferred.
//
// The cluster's own membership view is not mutated: callers that want the
// newcomer to serve future blocks build a new Cluster over addrs +
// newAddr.
func (cl *Cluster) BootstrapNewMember(newAddr string) (int, error) {
	newID := simnet.NodeID(len(cl.ids))
	grown := append(append([]simnet.NodeID(nil), cl.ids...), newID)
	return cl.provisionMember(newAddr, newID, grown)
}

// ResyncMember re-provisions an existing member whose local store was lost
// (crash, restart, disk wipe): headers are synced from a surviving member
// and every chunk the member owns under the current membership is fetched
// from another replica and pushed back, verify-on-write. addr must be the
// member's own address — cl must span the full membership including it.
// It returns how many chunks were transferred.
//
// A chunk whose only owners were the lost member itself (replication 1)
// cannot be recovered and fails the resync.
func (cl *Cluster) ResyncMember(addr string, id simnet.NodeID) (int, error) {
	if int(id) < 0 || int(id) >= len(cl.ids) {
		return 0, fmt.Errorf("netx: resync: member id %d outside cluster of %d", id, len(cl.ids))
	}
	if cl.addrs[int(id)] != addr {
		return 0, fmt.Errorf("netx: resync: member %d is %s, not %s", id, cl.addrs[int(id)], addr)
	}
	return cl.provisionMember(addr, id, cl.ids)
}

// provisionMember pushes headers plus the chunks self owns (ownership is
// rendezvous placement over the ownership id set) into the server at
// target, fetching everything from the cluster's members other than target
// itself. cl's membership is the membership blocks were distributed under,
// so chunk counts and source owners are computed from cl.ids.
func (cl *Cluster) provisionMember(target string, self simnet.NodeID, ownership []simnet.NodeID) (int, error) {
	targetClient, err := Dial(target)
	if err != nil {
		return 0, fmt.Errorf("netx: bootstrap: dial member %s: %w", target, err)
	}
	defer targetClient.Close()

	headers, err := cl.syncHeaders(targetClient, target)
	if err != nil {
		return 0, err
	}

	parts := len(cl.ids) // chunk count of already-stored blocks
	transferred := 0
	for _, h := range headers {
		block := h.Hash()
		seed := block.Uint64()
		for idx := 0; idx < parts; idx++ {
			owns, oerr := core.IsOwner(seed, ownership, idx, cl.replication, self)
			if oerr != nil {
				return transferred, oerr
			}
			if !owns {
				continue
			}
			// Owners under the distribute-time membership hold the data;
			// the target itself (which may be one of them, in the resync
			// case) has nothing to offer.
			owners, oerr := core.Owners(seed, cl.ids, idx, cl.replication)
			if oerr != nil {
				return transferred, oerr
			}
			var chunk *ChunkResp
			for _, o := range owners {
				addr := cl.addrs[int(o)]
				if addr == target {
					continue
				}
				c, cerr := cl.client(addr)
				if cerr != nil {
					continue
				}
				resp, gerr := c.GetChunk(block, idx)
				if gerr != nil {
					cl.dropClient(addr)
					continue
				}
				chunk = resp
				break
			}
			if chunk == nil {
				return transferred, fmt.Errorf("netx: bootstrap: chunk %d of %s unavailable from any owner", idx, block.Short())
			}
			// The target server verifies proofs against the header on write.
			if err := targetClient.PutChunk(PutChunkReq{
				Block:   block,
				Index:   idx,
				Parts:   chunk.Parts,
				TxStart: chunk.TxStart,
				Data:    chunk.Data,
				Proofs:  chunk.Proofs,
			}); err != nil {
				return transferred, fmt.Errorf("netx: bootstrap: push chunk %d to %s: %w", idx, target, err)
			}
			transferred++
		}
	}
	return transferred, nil
}

// syncHeaders copies the header chain from the first reachable member
// (skipping target itself) into targetClient, validating genesis anchoring
// and hash-chain linkage on the way.
func (cl *Cluster) syncHeaders(targetClient *Client, target string) ([]chain.Header, error) {
	var headers []chain.Header
	synced := false
	var lastErr error
	for _, addr := range cl.addrs {
		if addr == target {
			continue
		}
		c, cerr := cl.client(addr)
		if cerr != nil {
			lastErr = cerr
			continue
		}
		hs, herr := c.GetHeaders(0)
		if herr != nil {
			lastErr = fmt.Errorf("get headers from %s: %w", addr, herr)
			cl.dropClient(addr)
			continue
		}
		headers = hs
		synced = true
		break
	}
	if !synced {
		if lastErr != nil {
			return nil, fmt.Errorf("netx: bootstrap: no member served headers: %w", lastErr)
		}
		return nil, fmt.Errorf("netx: bootstrap: %w", ErrNoServers)
	}
	var prev *chain.Header
	for i := range headers {
		h := headers[i]
		if prev != nil {
			blk := chain.Block{Header: h}
			if err := blk.VerifyLink(prev); err != nil {
				return nil, fmt.Errorf("netx: bootstrap: header %d: %w", i, err)
			}
		} else if h.Height != 0 || !h.PrevHash.IsZero() {
			return nil, fmt.Errorf("netx: bootstrap: chain does not start at genesis")
		}
		if err := targetClient.PutHeader(h); err != nil {
			return nil, fmt.Errorf("netx: bootstrap: push header %d: %w", i, err)
		}
		prev = &headers[i]
	}
	return headers, nil
}
