package netx

import (
	"fmt"

	"icistrategy/internal/chain"
	"icistrategy/internal/core"
	"icistrategy/internal/simnet"
)

// BootstrapNewMember provisions a brand-new storage server as the next
// member of this cluster, over TCP: it syncs every header from an existing
// member (validating the hash chain), computes which chunks the newcomer
// owns under the grown membership with the same rendezvous placement the
// simulator's join protocol uses, fetches each from a current owner, and
// pushes it — verify-on-write — into the new server. It returns how many
// chunks were transferred.
//
// The cluster's own membership view is not mutated: callers that want the
// newcomer to serve future blocks build a new Cluster over addrs +
// newAddr.
func (cl *Cluster) BootstrapNewMember(newAddr string) (int, error) {
	newClient, err := Dial(newAddr)
	if err != nil {
		return 0, err
	}
	defer newClient.Close()

	// Header sync from the first reachable member, with linkage checks.
	var headers []chain.Header
	synced := false
	for _, addr := range cl.addrs {
		c, cerr := cl.client(addr)
		if cerr != nil {
			continue
		}
		hs, herr := c.GetHeaders(0)
		if herr != nil {
			cl.dropClient(addr)
			continue
		}
		headers = hs
		synced = true
		break
	}
	if !synced {
		return 0, fmt.Errorf("netx: bootstrap: %w", ErrNoServers)
	}
	var prev *chain.Header
	for i := range headers {
		h := headers[i]
		if prev != nil {
			blk := chain.Block{Header: h}
			if err := blk.VerifyLink(prev); err != nil {
				return 0, fmt.Errorf("netx: bootstrap: header %d: %w", i, err)
			}
		} else if h.Height != 0 || !h.PrevHash.IsZero() {
			return 0, fmt.Errorf("netx: bootstrap: chain does not start at genesis")
		}
		if err := newClient.PutHeader(h); err != nil {
			return 0, err
		}
		prev = &headers[i]
	}

	// Ownership under the grown membership: the newcomer takes the next
	// placement identity.
	newID := simnet.NodeID(len(cl.ids))
	grown := append(append([]simnet.NodeID(nil), cl.ids...), newID)
	parts := len(cl.ids) // chunk count of already-stored blocks
	transferred := 0
	for _, h := range headers {
		block := h.Hash()
		seed := block.Uint64()
		for idx := 0; idx < parts; idx++ {
			owns, oerr := core.IsOwner(seed, grown, idx, cl.replication, newID)
			if oerr != nil {
				return transferred, oerr
			}
			if !owns {
				continue
			}
			// Current owners under the old membership hold the data.
			oldOwners, oerr := core.Owners(seed, cl.ids, idx, cl.replication)
			if oerr != nil {
				return transferred, oerr
			}
			var chunk *ChunkResp
			for _, o := range oldOwners {
				c, cerr := cl.client(cl.addrs[int(o)])
				if cerr != nil {
					continue
				}
				resp, gerr := c.GetChunk(block, idx)
				if gerr != nil {
					continue
				}
				chunk = resp
				break
			}
			if chunk == nil {
				return transferred, fmt.Errorf("netx: bootstrap: chunk %d of %s unavailable", idx, block.Short())
			}
			// The new server verifies proofs against the header on write.
			if err := newClient.PutChunk(PutChunkReq{
				Block:   block,
				Index:   idx,
				Parts:   chunk.Parts,
				TxStart: chunk.TxStart,
				Data:    chunk.Data,
				Proofs:  chunk.Proofs,
			}); err != nil {
				return transferred, fmt.Errorf("netx: bootstrap: push chunk %d: %w", idx, err)
			}
			transferred++
		}
	}
	return transferred, nil
}
