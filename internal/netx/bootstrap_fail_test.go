package netx

import (
	"encoding/binary"
	"io"
	"net"
	"strings"
	"sync"
	"testing"

	"icistrategy/internal/chain"
	"icistrategy/internal/simnet"
)

// The bootstrap failure-path suite: peers that refuse connections, peers
// that serve truncated frames, and peers that die mid-transfer must all be
// survivable as long as one replica of everything stays reachable.

// distributeBlocks pushes count blocks through cl, failing the test on any
// error, and returns them.
func distributeBlocks(t *testing.T, cl *Cluster, count, txPerBlock int) []*chain.Block {
	t.Helper()
	blocks := testBlocks(t, count, txPerBlock)
	for _, b := range blocks {
		if err := cl.DistributeBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	return blocks
}

// deadAddr returns a loopback address that refuses connections: the port
// was bound and released, so nothing listens there.
func deadAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

func TestBootstrapSurvivesRefusedPeer(t *testing.T) {
	// 3 members, r=2: member 0 is down when the newcomer bootstraps.
	// Header sync and every chunk fetch must fall through to survivors.
	servers, addrs := startServers(t, 3)
	cl, err := NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	distributeBlocks(t, cl, 3, 18)
	if err := servers[0].Close(); err != nil {
		t.Fatal(err)
	}

	newcomer, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = newcomer.Close() })
	transferred, err := cl.BootstrapNewMember(newcomer.Addr())
	if err != nil {
		t.Fatalf("bootstrap with one refused peer: %v", err)
	}
	if transferred == 0 {
		t.Fatal("no chunks transferred")
	}
	if got := newcomer.Stats().HeaderCount; got != 3 {
		t.Fatalf("newcomer has %d headers, want 3", got)
	}
}

func TestBootstrapAllPeersRefuse(t *testing.T) {
	addrs := []string{deadAddr(t), deadAddr(t)}
	cl, err := NewCluster(addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	newcomer, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = newcomer.Close() })
	if _, err := cl.BootstrapNewMember(newcomer.Addr()); err == nil {
		t.Fatal("bootstrap succeeded with every peer refusing connections")
	} else if !strings.Contains(err.Error(), "bootstrap") {
		t.Fatalf("error does not identify the bootstrap phase: %v", err)
	}
}

// truncatingPeer accepts connections, reads one request frame, then writes
// a frame header claiming a large body but only a few bytes of it before
// closing — the wire shape of a peer dying mid-frame.
func truncatingPeer(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				var hdr [4]byte
				if _, err := io.ReadFull(c, hdr[:]); err != nil {
					return
				}
				n := binary.BigEndian.Uint32(hdr[:])
				if _, err := io.CopyN(io.Discard, c, int64(n)); err != nil {
					return
				}
				var out [4]byte
				binary.BigEndian.PutUint32(out[:], 100)
				_, _ = c.Write(out[:])
				_, _ = c.Write([]byte("truncated!"))
			}(conn)
		}
	}()
	return l.Addr().String()
}

func TestBootstrapSurvivesTruncatedFrames(t *testing.T) {
	// Distribute over two real members (ids 0, 1, r=2: both own every
	// chunk), then bootstrap through a membership view where member 0's
	// address is a peer that truncates every response mid-frame. Header
	// sync and chunk fetches must fall through to member 1.
	_, addrs := startServers(t, 2)
	cl, err := NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	blocks := distributeBlocks(t, cl, 2, 16)

	remapped, err := NewCluster([]string{truncatingPeer(t), addrs[1]}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer remapped.Close()
	newcomer, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = newcomer.Close() })
	transferred, err := remapped.BootstrapNewMember(newcomer.Addr())
	if err != nil {
		t.Fatalf("bootstrap with truncating peer: %v", err)
	}
	if transferred == 0 {
		t.Fatal("no chunks transferred")
	}
	if got := newcomer.Stats().HeaderCount; got != int64(len(blocks)) {
		t.Fatalf("newcomer has %d headers, want %d", got, len(blocks))
	}
}

// dyingProxy forwards TCP to backend but kills the whole peer (active
// connections and listener) after relaying responseBudget response frames
// — a peer that serves header sync and then dies mid-transfer.
type dyingProxy struct {
	addr string

	mu     sync.Mutex
	budget int
	conns  []net.Conn
	l      net.Listener
	dead   bool
}

func newDyingProxy(t *testing.T, backend string, responseBudget int) *dyingProxy {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &dyingProxy{addr: l.Addr().String(), budget: responseBudget, l: l}
	t.Cleanup(p.kill)
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			p.mu.Lock()
			if p.dead {
				p.mu.Unlock()
				_ = conn.Close()
				return
			}
			p.conns = append(p.conns, conn)
			p.mu.Unlock()
			go p.serve(conn, backend)
		}
	}()
	return p
}

func (p *dyingProxy) kill() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dead {
		return
	}
	p.dead = true
	_ = p.l.Close()
	for _, c := range p.conns {
		_ = c.Close()
	}
}

// serve relays client<->backend, counting response frames and killing the
// proxy once the budget runs out.
func (p *dyingProxy) serve(client net.Conn, backend string) {
	defer client.Close()
	up, err := net.Dial("tcp", backend)
	if err != nil {
		return
	}
	defer up.Close()
	go func() { _, _ = io.Copy(up, client) }() // requests: relay raw
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(up, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if _, err := client.Write(hdr[:]); err != nil {
			return
		}
		if _, err := io.CopyN(client, up, int64(n)); err != nil {
			return
		}
		p.mu.Lock()
		p.budget--
		out := p.budget <= 0
		p.mu.Unlock()
		if out {
			p.kill()
			return
		}
	}
}

func TestBootstrapRecoversWhenPeerDiesMidTransfer(t *testing.T) {
	// Two real members, r=2. The bootstrap's view routes member 0 through
	// a proxy that dies after two response frames: enough to serve the
	// header sync (and perhaps one chunk), then every later fetch from
	// member 0 fails and must be satisfied by member 1 — the second peer.
	_, addrs := startServers(t, 2)
	cl, err := NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	blocks := distributeBlocks(t, cl, 3, 16)

	proxy := newDyingProxy(t, addrs[0], 2)
	remapped, err := NewCluster([]string{proxy.addr, addrs[1]}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer remapped.Close()
	newcomer, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = newcomer.Close() })
	transferred, err := remapped.BootstrapNewMember(newcomer.Addr())
	if err != nil {
		t.Fatalf("bootstrap with peer dying mid-transfer: %v", err)
	}
	if transferred == 0 {
		t.Fatal("no chunks transferred")
	}
	if got := newcomer.Stats().HeaderCount; got != int64(len(blocks)) {
		t.Fatalf("newcomer has %d headers, want %d", got, len(blocks))
	}
}

func TestResyncMemberRestoresCrashedNode(t *testing.T) {
	// A member crashes and restarts empty on a fresh port; ResyncMember
	// refills exactly the chunks it owns under the unchanged membership.
	servers, addrs := startServers(t, 4)
	cl, err := NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	distributeBlocks(t, cl, 3, 20)
	wantChunks := servers[2].Stats().ChunkCount
	wantHeaders := servers[2].Stats().HeaderCount
	cl.Close()
	if err := servers[2].Close(); err != nil {
		t.Fatal(err)
	}

	reborn, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = reborn.Close() })
	newAddrs := append([]string(nil), addrs...)
	newAddrs[2] = reborn.Addr()
	view, err := NewCluster(newAddrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()
	transferred, err := view.ResyncMember(reborn.Addr(), simnet.NodeID(2))
	if err != nil {
		t.Fatalf("resync: %v", err)
	}
	st := reborn.Stats()
	if st.ChunkCount != wantChunks || int64(transferred) != wantChunks {
		t.Fatalf("resynced %d chunks (stored %d), want %d", transferred, st.ChunkCount, wantChunks)
	}
	if st.HeaderCount != wantHeaders {
		t.Fatalf("resynced %d headers, want %d", st.HeaderCount, wantHeaders)
	}
	// The healed cluster serves verified reads again.
	var hdrs []chain.Header
	c, err := Dial(newAddrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if hdrs, err = c.GetHeaders(0); err != nil || len(hdrs) == 0 {
		t.Fatalf("headers after resync: %v (%d)", err, len(hdrs))
	}
	if _, err := view.RetrieveBlock(hdrs[len(hdrs)-1]); err != nil {
		t.Fatalf("retrieve after resync: %v", err)
	}
}

func TestResyncMemberValidatesIdentity(t *testing.T) {
	_, addrs := startServers(t, 2)
	cl, err := NewCluster(addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.ResyncMember(addrs[0], simnet.NodeID(5)); err == nil {
		t.Fatal("out-of-range member id accepted")
	}
	if _, err := cl.ResyncMember(addrs[0], simnet.NodeID(1)); err == nil {
		t.Fatal("address/id mismatch accepted")
	}
}
