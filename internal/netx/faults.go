package netx

import (
	"fmt"
	"sync"
	"time"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/storage"
)

// This file is the real-network edge of the chaos layer: the same fault
// vocabulary the simulator injects on virtual links (simnet.FaultConfig:
// drop, corrupt, delay) exposed as a control-plane protocol op, so the
// integration harness (internal/contest) can script byzantine members and
// lossy servers against real TCP processes. Fault handling is disabled
// unless the server was armed with EnableChaos — a production-shaped server
// never honors a FaultReq.

// FaultConfig is the per-server fault-injection configuration. Rates are
// probabilities in [0, 1], evaluated independently per incoming request
// from one RNG seeded by Seed, so a scripted run replays the same fault
// decisions. The zero value injects nothing.
type FaultConfig struct {
	// DropRate is the probability an incoming request is dropped: the
	// connection is closed without a response, which the client sees as a
	// transport failure (the real-network analogue of simnet message loss).
	DropRate float64
	// CorruptRate is the probability a served chunk response has its
	// payload corrupted in flight (first byte flipped, like the simulator's
	// bit-flip corruption). Headers and control responses are never
	// touched: chunk data is the integrity-checked path.
	CorruptRate float64
	// Delay is a fixed extra latency applied to every request before it is
	// handled.
	Delay time.Duration
	// Seed seeds the fault RNG; 0 means 1.
	Seed uint64
}

func (c FaultConfig) enabled() bool {
	return c.DropRate > 0 || c.CorruptRate > 0 || c.Delay > 0
}

// faultState is one server's armed chaos machinery.
type faultState struct {
	mu  sync.Mutex
	cfg FaultConfig
	rng *blockcrypto.RNG

	dropped   int64
	corrupted int64
}

// EnableChaos arms fault handling: the server will honor FaultReq control
// ops from clients. Servers without it reject every FaultReq, so the op
// cannot be used against a node that did not opt in.
func (s *Server) EnableChaos() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.faults == nil {
		s.faults = &faultState{}
	}
}

// chaosState returns the armed fault layer, or nil when EnableChaos was
// never called.
func (s *Server) chaosState() *faultState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// set installs (or clears, with the zero config) the fault config.
func (f *faultState) set(cfg FaultConfig) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cfg = cfg
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	f.rng = blockcrypto.NewRNG(seed)
}

// faultDecision is what the armed fault layer wants done with one request.
type faultDecision struct {
	drop    bool
	corrupt bool
	delay   time.Duration
}

// decide rolls the fault dice for one incoming request.
func (f *faultState) decide() faultDecision {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.cfg.enabled() || f.rng == nil {
		return faultDecision{}
	}
	var d faultDecision
	d.delay = f.cfg.Delay
	if f.cfg.DropRate > 0 && f.rng.Float64() < f.cfg.DropRate {
		d.drop = true
		f.dropped++
		return d
	}
	if f.cfg.CorruptRate > 0 && f.rng.Float64() < f.cfg.CorruptRate {
		d.corrupt = true
		f.corrupted++
	}
	return d
}

// handleFault services the FaultReq control op on an armed fault layer.
func (s *Server) handleFault(f *faultState, r *FaultReq) *Response {
	resp := &FaultResp{}
	if r.Set != nil {
		f.set(*r.Set)
	}
	if r.CorruptStored {
		s.mu.Lock()
		for _, h := range s.store.Headers() {
			block := h.Hash()
			for _, idx := range s.store.ChunksForBlock(block) {
				if s.store.Corrupt(storage.ChunkID{Block: block, Index: idx}) {
					resp.Corrupted++
				}
			}
		}
		logf := s.logf
		s.mu.Unlock()
		if logf != nil {
			logf("fault.corrupt-stored", "count", resp.Corrupted)
		}
	}
	return &Response{Faults: resp}
}

// corruptChunkResponses flips the first byte of every chunk payload in a
// response, leaving proofs and headers intact, so clients exercise their
// verify-on-read paths exactly as they would against a byzantine member.
func corruptChunkResponses(resp *Response) {
	flip := func(c *ChunkResp) {
		if len(c.Data) == 0 {
			return
		}
		// The data slice is a private copy from the store (copy-on-read),
		// so flipping here cannot corrupt the stored chunk.
		c.Data[0] ^= 0xFF
	}
	if resp.Chunk != nil {
		flip(resp.Chunk)
	}
	if resp.BlockChunks != nil {
		for i := range resp.BlockChunks.Chunks {
			flip(&resp.BlockChunks.Chunks[i])
		}
	}
}

// InjectFault sends a FaultReq control op: installing a fault config,
// corrupting stored chunks, or both. The server must have chaos armed.
func (c *Client) InjectFault(req FaultReq) (*FaultResp, error) {
	resp, err := c.roundTrip(&Request{Fault: &req})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if resp.Faults == nil {
		return nil, fmt.Errorf("netx: fault: %w", ErrBadRequest)
	}
	return resp.Faults, nil
}
