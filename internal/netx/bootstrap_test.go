package netx

import (
	"testing"

	"icistrategy/internal/core"
	"icistrategy/internal/simnet"
)

func TestBootstrapNewMemberOverTCP(t *testing.T) {
	_, addrs := startServers(t, 6)
	cl, err := NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	blocks := testBlocks(t, 4, 24)
	for _, b := range blocks {
		if err := cl.DistributeBlock(b); err != nil {
			t.Fatal(err)
		}
	}

	// A 7th server joins.
	newcomer, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = newcomer.Close() })
	transferred, err := cl.BootstrapNewMember(newcomer.Addr())
	if err != nil {
		t.Fatal(err)
	}
	st := newcomer.Stats()
	if st.HeaderCount != int64(len(blocks)) {
		t.Fatalf("newcomer has %d headers, want %d", st.HeaderCount, len(blocks))
	}
	if int64(transferred) != st.ChunkCount {
		t.Fatalf("transferred %d, stored %d", transferred, st.ChunkCount)
	}
	// Exactly the chunks owned under the grown membership, no more.
	grown := make([]simnet.NodeID, 7)
	for i := range grown {
		grown[i] = simnet.NodeID(i)
	}
	want := 0
	for _, b := range blocks {
		seed := b.Hash().Uint64()
		for idx := 0; idx < 6; idx++ {
			owns, err := core.IsOwner(seed, grown, idx, 2, 6)
			if err != nil {
				t.Fatal(err)
			}
			if owns {
				want++
			}
		}
	}
	if transferred != want {
		t.Fatalf("transferred %d chunks, placement says %d", transferred, want)
	}
	// The stored chunks verify: spot-check via the server's own store
	// accounting plus a direct chunk read.
	if want > 0 {
		c, err := Dial(newcomer.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		found := false
		for _, b := range blocks {
			seed := b.Hash().Uint64()
			for idx := 0; idx < 6 && !found; idx++ {
				owns, _ := core.IsOwner(seed, grown, idx, 2, 6)
				if !owns {
					continue
				}
				resp, err := c.GetChunk(b.Hash(), idx)
				if err != nil {
					t.Fatalf("owned chunk unreadable: %v", err)
				}
				if len(resp.Data) == 0 {
					t.Fatal("empty chunk served")
				}
				found = true
			}
		}
		if !found {
			t.Fatal("no owned chunk located")
		}
	}
}

func TestBootstrapAgainstEmptyCluster(t *testing.T) {
	_, addrs := startServers(t, 3)
	cl, err := NewCluster(addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	newcomer, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = newcomer.Close() })
	transferred, err := cl.BootstrapNewMember(newcomer.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if transferred != 0 {
		t.Fatalf("empty cluster transferred %d chunks", transferred)
	}
}
