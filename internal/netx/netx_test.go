package netx

import (
	"errors"
	"strings"
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
	"icistrategy/internal/workload"
)

// startServers launches n TCP storage servers on ephemeral ports.
func startServers(t *testing.T, n int) ([]*Server, []string) {
	t.Helper()
	servers := make([]*Server, n)
	addrs := make([]string, n)
	for i := range servers {
		s, err := NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		servers[i] = s
		addrs[i] = s.Addr()
	}
	return servers, addrs
}

func testBlocks(t *testing.T, count, txPerBlock int) []*chain.Block {
	t.Helper()
	gen, err := workload.NewGenerator(workload.Config{Accounts: 40, PayloadBytes: 20, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := workload.NewChainBuilder(gen, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*chain.Block, count)
	for i := range out {
		b, err := cb.NextBlock(txPerBlock)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = b
	}
	return out
}

func TestFramingRoundTrip(t *testing.T) {
	// In-memory pipe: write a request, read it back.
	srv, addrs := startServers(t, 1)
	_ = srv
	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h := chain.Header{Height: 3, TxCount: 1}
	if err := c.PutHeader(h); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetHeaders(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Hash() != h.Hash() {
		t.Fatalf("headers round trip: %+v", got)
	}
}

func TestClusterDistributeAndRetrieve(t *testing.T) {
	_, addrs := startServers(t, 6)
	cl, err := NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	blocks := testBlocks(t, 3, 30)
	for _, b := range blocks {
		if err := cl.DistributeBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	for _, b := range blocks {
		got, err := cl.RetrieveBlock(b.Header)
		if err != nil {
			t.Fatal(err)
		}
		if got.Hash() != b.Hash() || len(got.Txs) != len(b.Txs) {
			t.Fatal("retrieved block mismatch")
		}
	}
}

func TestClusterStorageIsPartitioned(t *testing.T) {
	servers, addrs := startServers(t, 5)
	cl, err := NewCluster(addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	b := testBlocks(t, 1, 40)[0]
	if err := cl.DistributeBlock(b); err != nil {
		t.Fatal(err)
	}
	body := int64(b.BodySize())
	var sum int64
	for _, s := range servers {
		st := s.Stats()
		if st.ChunkBytes >= body {
			t.Fatalf("one server stores the whole body (%d of %d)", st.ChunkBytes, body)
		}
		sum += st.ChunkBytes
	}
	// r=1: cluster-wide chunk bytes == body bytes (modulo per-chunk count
	// prefixes: 5 chunks x 4 bytes, minus the body's own 4-byte prefix).
	want := body + 4*int64(len(servers)) - 4
	if sum != want {
		t.Fatalf("cluster stores %d bytes, want %d", sum, want)
	}
}

func TestDegradedReadWithDeadServer(t *testing.T) {
	servers, addrs := startServers(t, 6)
	cl, err := NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	b := testBlocks(t, 1, 24)[0]
	if err := cl.DistributeBlock(b); err != nil {
		t.Fatal(err)
	}
	// Kill one server; with r=2 every chunk has a live replica.
	if err := servers[2].Close(); err != nil {
		t.Fatal(err)
	}
	cl.dropClient(addrs[2])
	got, err := cl.RetrieveBlock(b.Header)
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if got.Hash() != b.Hash() {
		t.Fatal("wrong block")
	}
}

func TestServerRejectsUnverifiableChunks(t *testing.T) {
	_, addrs := startServers(t, 1)
	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	b := testBlocks(t, 1, 8)[0]
	if err := c.PutHeader(b.Header); err != nil {
		t.Fatal(err)
	}
	tree, _ := chain.TxMerkleTree(b.Txs)
	proof0, _ := tree.Prove(0)
	sub := chain.Block{Txs: b.Txs[:1]}
	good := PutChunkReq{
		Block: b.Hash(), Index: 0, Parts: 8, TxStart: 0,
		Data: sub.EncodeBody(), Proofs: []chain.Proof{proof0},
	}
	if err := c.PutChunk(good); err != nil {
		t.Fatalf("valid chunk rejected: %v", err)
	}

	// Tampered data fails proof verification server-side.
	tampered := good
	tampered.Index = 1
	mut := *b.Txs[0]
	mut.Amount++
	tsub := chain.Block{Txs: []*chain.Transaction{&mut}}
	tampered.Data = tsub.EncodeBody()
	if err := c.PutChunk(tampered); err == nil {
		t.Fatal("tampered chunk accepted")
	}

	// Chunk for an unknown header is refused.
	unknown := good
	unknown.Block = blockcrypto.Sum256([]byte("phantom"))
	if err := c.PutChunk(unknown); err == nil {
		t.Fatal("chunk without header accepted")
	}

	// Structural garbage is refused.
	garbage := good
	garbage.Index = 2
	garbage.Data = []byte{1, 2, 3}
	if err := c.PutChunk(garbage); err == nil {
		t.Fatal("garbage chunk accepted")
	}
	empty := good
	empty.Index = 3
	empty.Data = nil
	if err := c.PutChunk(empty); err == nil {
		t.Fatal("empty chunk accepted")
	}
}

func TestGetChunkNotFound(t *testing.T) {
	_, addrs := startServers(t, 1)
	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.GetChunk(blockcrypto.Sum256([]byte("nope")), 0); err == nil {
		t.Fatal("missing chunk found")
	}
}

func TestStats(t *testing.T) {
	_, addrs := startServers(t, 3)
	cl, err := NewCluster(addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	b := testBlocks(t, 1, 12)[0]
	if err := cl.DistributeBlock(b); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.HeaderCount != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, 1); err == nil {
		t.Fatal("empty cluster accepted")
	}
	if _, err := NewCluster([]string{"a"}, 2); err == nil {
		t.Fatal("replication > servers accepted")
	}
}

func TestClientAfterClose(t *testing.T) {
	_, addrs := startServers(t, 1)
	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.PutHeader(chain.Header{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestRetrieveIncompleteWithReplicationOne(t *testing.T) {
	servers, addrs := startServers(t, 5)
	cl, err := NewCluster(addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	b := testBlocks(t, 1, 20)[0]
	if err := cl.DistributeBlock(b); err != nil {
		t.Fatal(err)
	}
	// Find a server that holds at least one chunk and kill it: r=1 means
	// its chunks are gone.
	killed := false
	for i, s := range servers {
		if s.Stats().ChunkCount > 0 {
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			cl.dropClient(addrs[i])
			killed = true
			break
		}
	}
	if !killed {
		t.Fatal("no server held chunks")
	}
	if _, err := cl.RetrieveBlock(b.Header); err == nil {
		t.Fatal("read succeeded despite lost chunks (r=1)")
	} else if !strings.Contains(err.Error(), "of") {
		// fine: either incomplete-block or reassembly error; both detect it
		_ = err
	}
}

func TestConcurrentClients(t *testing.T) {
	// One server, many goroutine clients hammering reads and writes: the
	// server must stay consistent and race-free (run with -race).
	_, addrs := startServers(t, 1)
	blocks := testBlocks(t, 1, 16)
	b := blocks[0]
	setup, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	if err := setup.PutHeader(b.Header); err != nil {
		t.Fatal(err)
	}
	tree, _ := chain.TxMerkleTree(b.Txs)

	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			c, err := Dial(addrs[0])
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				idx := (w*20 + i) % len(b.Txs)
				proof, perr := tree.Prove(idx)
				if perr != nil {
					errs <- perr
					return
				}
				sub := chain.Block{Txs: b.Txs[idx : idx+1]}
				put := PutChunkReq{
					Block: b.Hash(), Index: idx, Parts: len(b.Txs), TxStart: idx,
					Data: sub.EncodeBody(), Proofs: []chain.Proof{proof},
				}
				if err := c.PutChunk(put); err != nil {
					errs <- err
					return
				}
				if _, err := c.GetChunk(b.Hash(), idx); err != nil {
					errs <- err
					return
				}
				if _, err := c.Stats(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st, err := setup.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ChunkCount != int64(len(b.Txs)) {
		t.Fatalf("server holds %d chunks, want %d", st.ChunkCount, len(b.Txs))
	}
}
