package netx

import (
	"fmt"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/core"
	"icistrategy/internal/simnet"
)

// GetClusterMap fetches the server's epoch-versioned cluster map; an empty
// slice means no map was ever published to that server.
func (c *Client) GetClusterMap() ([]EpochInfo, error) {
	resp, err := c.roundTrip(&Request{GetClusterMap: &ClusterMapReq{}})
	if err != nil {
		return nil, err
	}
	if err := respError(resp); err != nil {
		return nil, err
	}
	if resp.ClusterMap == nil {
		return nil, ErrBadRequest
	}
	return resp.ClusterMap.Epochs, nil
}

// SetClusterMap publishes a cluster map to the server. The server keeps the
// newest map it has seen, so delivering a stale map is harmless.
func (c *Client) SetClusterMap(epochs []EpochInfo) error {
	resp, err := c.roundTrip(&Request{SetClusterMap: &SetClusterMapReq{Epochs: epochs}})
	if err != nil {
		return err
	}
	return respError(resp)
}

// baseEpoch synthesizes the genesis epoch from the cluster's constructor
// membership — the map every deployment implicitly runs under before any
// churn is published.
func (cl *Cluster) baseEpoch() EpochInfo {
	members := make([]MemberInfo, len(cl.addrs))
	for i, addr := range cl.addrs {
		members[i] = MemberInfo{ID: uint64(cl.ids[i]), Addr: addr}
	}
	return EpochInfo{Epoch: 0, FromHeight: 0, Members: members}
}

// currentMap gathers the newest published cluster map reachable in the
// cluster, falling back to the synthesized genesis epoch when nobody holds
// one. Polling every member (not just the first) tolerates members that
// missed an earlier publish.
func (cl *Cluster) currentMap() []EpochInfo {
	best := []EpochInfo{cl.baseEpoch()}
	for _, addr := range cl.addrs {
		c, err := cl.client(addr)
		if err != nil {
			continue
		}
		epochs, err := c.GetClusterMap()
		if err != nil {
			cl.dropClient(addr)
			continue
		}
		if len(epochs) > len(best) { // epoch numbers are positional
			best = epochs
		}
	}
	return best
}

// maxHeight reports the highest header height any reachable member holds.
func (cl *Cluster) maxHeight() (uint64, bool) {
	var top uint64
	found := false
	for _, addr := range cl.addrs {
		c, err := cl.client(addr)
		if err != nil {
			continue
		}
		headers, err := c.GetHeaders(0)
		if err != nil {
			cl.dropClient(addr)
			continue
		}
		for _, h := range headers {
			if !found || h.Height > top {
				top, found = h.Height, true
			}
		}
	}
	return top, found
}

// PublishEpoch appends a membership epoch to the cluster map and pushes the
// updated map to every reachable member of both the old and new rosters.
// The epoch governs blocks written above the highest header currently held,
// so in-flight history keeps resolving against its write-time membership.
// Returns the new epoch number.
func (cl *Cluster) PublishEpoch(members []MemberInfo) (int, error) {
	if len(members) == 0 {
		return 0, fmt.Errorf("netx: publish epoch with no members")
	}
	epochs := cl.currentMap()
	var from uint64
	if h, ok := cl.maxHeight(); ok {
		from = h + 1
	}
	next := EpochInfo{
		Epoch:      len(epochs),
		FromHeight: from,
		Members:    append([]MemberInfo(nil), members...),
	}
	epochs = append(epochs, next)

	targets := make(map[string]bool, len(cl.addrs)+len(members))
	for _, addr := range cl.addrs {
		targets[addr] = true
	}
	for _, m := range members {
		targets[m.Addr] = true
	}
	published := 0
	for addr := range targets {
		c, err := cl.client(addr)
		if err != nil {
			continue
		}
		if err := c.SetClusterMap(epochs); err != nil {
			cl.dropClient(addr)
			continue
		}
		published++
	}
	if published == 0 {
		return 0, fmt.Errorf("netx: cluster map epoch %d reached no member", next.Epoch)
	}
	return next.Epoch, nil
}

// RetireMember gracefully removes the member serving at addr from a cluster
// whose full current membership this Cluster was built over. Every chunk
// the leaver holds whose ownership shifts under the shrunk membership is
// pushed to the gaining owners (the receiving server verifies on write),
// and the shrunk epoch is then published cluster-wide so readers and
// gateways learn the new roster. Chunks that keep an owner under the old
// placement stay put: rendezvous hashing only promotes on removal, so the
// transfer set is exactly the leaver's displaced replicas. Returns the
// number of chunks moved.
func (cl *Cluster) RetireMember(addr string) (int, error) {
	li := -1
	for i, a := range cl.addrs {
		if a == addr {
			li = i
			break
		}
	}
	if li < 0 {
		return 0, fmt.Errorf("netx: %s is not a cluster member", addr)
	}
	if len(cl.addrs) == 1 {
		return 0, fmt.Errorf("netx: cannot retire the last member")
	}
	shrunkIDs := make([]simnet.NodeID, 0, len(cl.ids)-1)
	addrOf := make(map[simnet.NodeID]string, len(cl.ids))
	var remaining []MemberInfo
	for i, id := range cl.ids {
		addrOf[id] = cl.addrs[i]
		if i == li {
			continue
		}
		shrunkIDs = append(shrunkIDs, id)
		remaining = append(remaining, MemberInfo{ID: uint64(id), Addr: cl.addrs[i]})
	}
	r := cl.replication
	if r > len(shrunkIDs) {
		r = len(shrunkIDs)
	}

	leaver, err := cl.client(addr)
	if err != nil {
		return 0, fmt.Errorf("netx: retire %s: %w", addr, err)
	}
	headers, err := leaver.GetHeaders(0)
	if err != nil {
		cl.dropClient(addr)
		return 0, fmt.Errorf("netx: retire %s: headers: %w", addr, err)
	}
	moved := 0
	for _, hdr := range headers {
		block := hdr.Hash()
		resp, err := leaver.GetBlockChunks(block)
		if err != nil {
			cl.dropClient(addr)
			return moved, fmt.Errorf("netx: retire %s: chunks of %x: %w", addr, block[:4], err)
		}
		seed := block.Uint64()
		for _, chk := range resp.Chunks {
			oldOwners, err := core.Owners(seed, cl.ids, chk.Index, cl.replication)
			if err != nil {
				return moved, err
			}
			newOwners, err := core.Owners(seed, shrunkIDs, chk.Index, r)
			if err != nil {
				return moved, err
			}
			was := make(map[simnet.NodeID]bool, len(oldOwners))
			for _, o := range oldOwners {
				was[o] = true
			}
			pushed := false
			for _, o := range newOwners {
				if was[o] {
					continue
				}
				dst, cerr := cl.client(addrOf[o])
				if cerr != nil {
					return moved, fmt.Errorf("netx: retire %s: dial gainer %s: %w", addr, addrOf[o], cerr)
				}
				req := PutChunkReq{
					Block:   block,
					Index:   chk.Index,
					Parts:   chk.Parts,
					TxStart: chk.TxStart,
					Data:    chk.Data,
					Proofs:  chk.Proofs,
				}
				if perr := dst.PutChunk(req); perr != nil {
					cl.dropClient(addrOf[o])
					return moved, fmt.Errorf("netx: retire %s: push chunk %d to %s: %w", addr, chk.Index, addrOf[o], perr)
				}
				pushed = true
			}
			if pushed {
				moved++
			}
		}
	}
	if _, err := cl.PublishEpoch(remaining); err != nil {
		return moved, err
	}
	return moved, nil
}

// epochForMap resolves the epoch governing a write height in a cluster map:
// the last entry whose FromHeight does not exceed it (back-to-back epochs
// at one height resolve to the later — same arithmetic as core).
func epochForMap(epochs []EpochInfo, height uint64) EpochInfo {
	for i := len(epochs) - 1; i > 0; i-- {
		if epochs[i].FromHeight <= height {
			return epochs[i]
		}
	}
	return epochs[0]
}

// RejoinMember re-provisions a member returning after a graceful departure
// and publishes the restored membership as a new epoch. cl must span the
// full post-rejoin membership including addr. Unlike ResyncMember, every
// block is resolved against the epoch it was written under — blocks
// distributed while the member was away have fewer parts, and their chunks
// may have migrated to new owners — so the rejoiner receives exactly the
// chunks it owns under the restored membership, fetched from either their
// write-epoch or post-migration holders. Returns the chunks transferred.
func (cl *Cluster) RejoinMember(addr string) (int, error) {
	li := -1
	for i, a := range cl.addrs {
		if a == addr {
			li = i
			break
		}
	}
	if li < 0 {
		return 0, fmt.Errorf("netx: %s is not a cluster member", addr)
	}
	self := cl.ids[li]
	epochs := cl.currentMap()
	newest := epochs[len(epochs)-1]

	targetClient, err := Dial(addr)
	if err != nil {
		return 0, fmt.Errorf("netx: rejoin: dial member %s: %w", addr, err)
	}
	defer targetClient.Close()
	headers, err := cl.syncHeaders(targetClient, addr)
	if err != nil {
		return 0, err
	}

	transferred := 0
	for _, h := range headers {
		block := h.Hash()
		seed := block.Uint64()
		wrote := epochForMap(epochs, h.Height)
		parts := len(wrote.Members)
		for idx := 0; idx < parts; idx++ {
			owns, oerr := core.IsOwner(seed, cl.ids, idx, cl.replication, self) //icilint:allow epochres(churn transfer decides ownership under the NEW roster on purpose; it fetches from the write-epoch members wrote.Members)
			if oerr != nil {
				return transferred, oerr
			}
			if !owns {
				continue
			}
			chunk, ferr := cl.fetchFromEpochOwners(block, seed, idx, addr, wrote, newest)
			if ferr != nil {
				return transferred, ferr
			}
			if err := targetClient.PutChunk(PutChunkReq{
				Block:   block,
				Index:   idx,
				Parts:   chunk.Parts,
				TxStart: chunk.TxStart,
				Data:    chunk.Data,
				Proofs:  chunk.Proofs,
			}); err != nil {
				return transferred, fmt.Errorf("netx: rejoin: push chunk %d to %s: %w", idx, addr, err)
			}
			transferred++
		}
	}
	members := make([]MemberInfo, len(cl.addrs))
	for i := range cl.addrs {
		members[i] = MemberInfo{ID: uint64(cl.ids[i]), Addr: cl.addrs[i]}
	}
	if _, err := cl.PublishEpoch(members); err != nil {
		return transferred, err
	}
	return transferred, nil
}

// fetchFromEpochOwners gathers one chunk from its write-epoch owners or,
// failing those, the owners it migrated to under the newest epoch —
// skipping the member being provisioned, which has nothing to offer.
func (cl *Cluster) fetchFromEpochOwners(block blockcrypto.Hash, seed uint64, idx int, skip string, es ...EpochInfo) (*ChunkResp, error) {
	tried := make(map[string]bool)
	for _, e := range es {
		ids := make([]simnet.NodeID, len(e.Members))
		addrOf := make(map[simnet.NodeID]string, len(e.Members))
		for i, m := range e.Members {
			ids[i] = simnet.NodeID(m.ID)
			addrOf[ids[i]] = m.Addr
		}
		r := cl.replication
		if r > len(ids) {
			r = len(ids)
		}
		owners, err := core.Owners(seed, ids, idx, r)
		if err != nil {
			return nil, err
		}
		for _, o := range owners {
			a := addrOf[o]
			if a == skip || tried[a] {
				continue
			}
			tried[a] = true
			c, cerr := cl.client(a)
			if cerr != nil {
				continue
			}
			resp, gerr := c.GetChunk(block, idx)
			if gerr != nil {
				cl.dropClient(a)
				continue
			}
			return resp, nil
		}
	}
	return nil, fmt.Errorf("netx: rejoin: chunk %d of %s unavailable from any epoch owner", idx, block.Short())
}
