package netx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"icistrategy/internal/blockcrypto"
)

// frame wraps raw bytes in a protocol frame (length prefix + body).
func frame(body []byte) []byte {
	out := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(out, uint32(len(body)))
	copy(out[4:], body)
	return out
}

// FuzzReadMessage feeds arbitrary byte streams to the frame decoder.
// Malformed, truncated and oversized frames must all come back as errors —
// never a panic, and never an allocation sized by a hostile length prefix.
// Frames that decode successfully must survive a write/read round-trip.
func FuzzReadMessage(f *testing.F) {
	// Corpus: empty, truncated header, length prefix with no body, a frame
	// claiming far more than it carries, an oversized claim, and two valid
	// messages.
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 9})
	f.Add(frame([]byte("not gob")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	var buf bytes.Buffer
	if err := writeMessage(&buf, &Request{GetHeaders: &GetHeadersReq{FromHeight: 3}}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	buf.Reset()
	if err := writeMessage(&buf, &Request{GetChunk: &GetChunkReq{Block: blockcrypto.Sum256([]byte("b")), Index: 2}}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		var req Request
		if err := readMessage(bytes.NewReader(data), &req); err != nil {
			return
		}
		var out bytes.Buffer
		if err := writeMessage(&out, &req); err != nil {
			t.Fatalf("re-encode of accepted request: %v", err)
		}
		var again Request
		if err := readMessage(&out, &again); err != nil {
			t.Fatalf("re-decode of accepted request: %v", err)
		}
	})
}

// TestReadMessageTruncatedBody pins the incremental-read hardening: a frame
// header claiming the full 64 MiB on a stream that ends after a few bytes
// must fail with ErrUnexpectedEOF after reading only what arrived, not
// allocate the claimed size up front.
func TestReadMessageTruncatedBody(t *testing.T) {
	hdr := make([]byte, 4, 12)
	binary.BigEndian.PutUint32(hdr, maxMessageSize)
	stream := append(hdr, 1, 2, 3)
	var req Request
	err := readMessage(bytes.NewReader(stream), &req)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("got %v, want io.ErrUnexpectedEOF", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		var r Request
		_ = readMessage(bytes.NewReader(stream), &r)
	})
	// A handful of small allocations (buffer growth to the 3 arrived bytes,
	// reader state) is fine; a 64 MiB up-front slice would show up as an
	// enormous per-run byte count and is separately covered by the fact
	// that bytes.Buffer only grows with actual input.
	if allocs > 20 {
		t.Fatalf("truncated read allocates too much: %.0f allocs/run", allocs)
	}
}

// TestReadMessageOversizedClaim pins the size ceiling: a frame claiming
// more than maxMessageSize is rejected before any body read.
func TestReadMessageOversizedClaim(t *testing.T) {
	hdr := make([]byte, 4)
	binary.BigEndian.PutUint32(hdr, maxMessageSize+1)
	var req Request
	if err := readMessage(bytes.NewReader(hdr), &req); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("got %v, want ErrTooLarge", err)
	}
}
