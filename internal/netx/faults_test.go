package netx

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFaultRejectedWithoutChaos(t *testing.T) {
	_, addrs := startServers(t, 1)
	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.InjectFault(FaultReq{CorruptStored: true}); err == nil {
		t.Fatal("FaultReq accepted by a server without chaos enabled")
	} else if !strings.Contains(err.Error(), "chaos not enabled") {
		t.Fatalf("wrong rejection: %v", err)
	}
}

func TestCorruptStoredMakesByzantineMember(t *testing.T) {
	// 3 members, r=2: corrupt every shard on member 1. Its verify-on-read
	// path must withhold the damaged chunks, and cluster reads must
	// degrade to the surviving replicas.
	servers, addrs := startServers(t, 3)
	cl, err := NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	blocks := distributeBlocks(t, cl, 2, 18)

	servers[1].EnableChaos()
	var mu sync.Mutex
	var events []string
	servers[1].SetLogf(func(event string, kv ...any) {
		mu.Lock()
		events = append(events, event)
		mu.Unlock()
	})
	c, err := Dial(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.InjectFault(FaultReq{CorruptStored: true})
	if err != nil {
		t.Fatal(err)
	}
	if int64(resp.Corrupted) != servers[1].Stats().ChunkCount {
		t.Fatalf("corrupted %d of %d stored chunks", resp.Corrupted, servers[1].Stats().ChunkCount)
	}
	mu.Lock()
	sawEvent := false
	for _, e := range events {
		if e == "fault.corrupt-stored" {
			sawEvent = true
		}
	}
	mu.Unlock()
	if !sawEvent {
		t.Fatal("no fault.corrupt-stored event logged")
	}
	// Degraded, verified reads still succeed via the honest replicas.
	for _, b := range blocks {
		got, err := cl.RetrieveBlock(b.Header)
		if err != nil {
			t.Fatalf("read with byzantine member: %v", err)
		}
		if len(got.Txs) != len(b.Txs) {
			t.Fatalf("block %d reassembled with %d txs, want %d", b.Header.Height, len(got.Txs), len(b.Txs))
		}
	}
}

func TestDropFaultSeversRequests(t *testing.T) {
	server, addrs := startServers(t, 1)
	server[0].EnableChaos()
	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.InjectFault(FaultReq{Set: &FaultConfig{DropRate: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stats(); err == nil {
		t.Fatal("request survived DropRate 1")
	}
	// Clearing the config (via a fresh connection) restores service.
	c2, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.InjectFault(FaultReq{Set: &FaultConfig{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Stats(); err != nil {
		t.Fatalf("request failed after faults cleared: %v", err)
	}
}

func TestDelayFaultAddsLatency(t *testing.T) {
	server, addrs := startServers(t, 1)
	server[0].EnableChaos()
	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const delay = 30 * time.Millisecond
	if _, err := c.InjectFault(FaultReq{Set: &FaultConfig{Delay: delay}}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	if took := time.Since(start); took < delay {
		t.Fatalf("delayed request took %v, want >= %v", took, delay)
	}
}

func TestCorruptRateDamagesServedChunks(t *testing.T) {
	// One member, r=1: with CorruptRate 1 every served chunk payload is
	// flipped in flight, so reassembly cannot produce a verified block.
	servers, addrs := startServers(t, 1)
	servers[0].EnableChaos()
	cl, err := NewCluster(addrs, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	blocks := distributeBlocks(t, cl, 1, 12)
	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.InjectFault(FaultReq{Set: &FaultConfig{CorruptRate: 1, Seed: 7}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RetrieveBlock(blocks[0].Header); err == nil {
		t.Fatal("retrieve returned a verified block despite corrupt-in-flight shards")
	}
	// The stored data is untouched: clearing the fault heals reads.
	if _, err := c.InjectFault(FaultReq{Set: &FaultConfig{}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.RetrieveBlock(blocks[0].Header); err != nil {
		t.Fatalf("retrieve after clearing faults: %v", err)
	}
}
