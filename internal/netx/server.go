package netx

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"icistrategy/internal/chain"
	"icistrategy/internal/storage"
	"icistrategy/internal/trace"
)

// Server is one ICIStrategy storage node exposed over TCP. It owns a
// storage.Store plus the proof sidecar and serves the request/response
// protocol until closed. All methods are safe for concurrent use.
type Server struct {
	listener net.Listener

	mu     sync.Mutex
	store  *storage.Store
	meta   map[storage.ChunkID]chunkSidecar
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	tr     *trace.Tracer
}

type chunkSidecar struct {
	parts   int
	txStart int
	proofs  []chain.Proof
}

// NewServer starts a storage server listening on addr (use "127.0.0.1:0"
// for an ephemeral port).
func NewServer(addr string) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netx: listen: %w", err)
	}
	s := &Server{
		listener: l,
		store:    storage.NewStore(),
		meta:     make(map[storage.ChunkID]chunkSidecar),
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops the listener, force-closes active connections, and waits for
// all connection goroutines to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

// Stats returns the server's storage accounting snapshot.
func (s *Server) Stats() storage.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.Stats()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				_ = conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles request/response pairs until the client disconnects.
func (s *Server) serveConn(conn net.Conn) {
	s.mu.Lock()
	tr := s.tr
	s.mu.Unlock()
	cw := &countConn{rw: conn}
	var last int64
	for {
		var req Request
		if err := readMessage(cw, &req); err != nil {
			return // EOF or broken frame: drop the connection
		}
		resp := s.handle(&req)
		if err := writeMessage(cw, resp); err != nil {
			return
		}
		if tr.Enabled() {
			tr.Point(0, "netx", "serve:"+reqName(&req), clientNode, cw.n-last, resp.Err)
			last = cw.n
		}
	}
}

func (s *Server) handle(req *Request) *Response {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case req.PutHeader != nil:
		s.store.PutHeader(req.PutHeader.Header)
		return okResp()
	case req.PutChunk != nil:
		return s.handlePutChunk(req.PutChunk)
	case req.GetHeaders != nil:
		var out []chain.Header
		for _, h := range s.store.Headers() {
			if h.Height >= req.GetHeaders.FromHeight {
				out = append(out, h)
			}
		}
		return &Response{Headers: out}
	case req.GetChunk != nil:
		return s.handleGetChunk(req.GetChunk)
	case req.GetBlockChunks != nil:
		return s.handleGetBlockChunks(req.GetBlockChunks)
	case req.Stats != nil:
		st := s.store.Stats()
		return &Response{Stats: &StatsResp{
			HeaderCount: st.HeaderCount,
			HeaderBytes: st.HeaderBytes,
			ChunkCount:  st.ChunkCount,
			ChunkBytes:  st.ChunkBytes,
		}}
	default:
		return errResp(ErrBadRequest)
	}
}

func (s *Server) handlePutChunk(r *PutChunkReq) *Response {
	if len(r.Data) == 0 || r.Parts <= 0 || r.Index < 0 || r.Index >= r.Parts {
		return errResp(ErrBadRequest)
	}
	// The server verifies what it stores: the chunk must decode and every
	// transaction must prove into the already-stored header's root.
	hdr, err := s.store.Header(r.Block)
	if err != nil {
		return errResp(fmt.Errorf("store chunk: header unknown: %w", ErrNotFound))
	}
	txs, err := chain.DecodeBody(r.Data)
	if err != nil {
		return errResp(fmt.Errorf("%w: %v", ErrBadRequest, err))
	}
	if len(txs) != len(r.Proofs) {
		return errResp(fmt.Errorf("%w: %d txs, %d proofs", ErrBadRequest, len(txs), len(r.Proofs)))
	}
	for i, tx := range txs {
		if r.Proofs[i].LeafIndex != r.TxStart+i {
			return errResp(fmt.Errorf("%w: proof index mismatch", ErrBadRequest))
		}
		if err := chain.VerifyProof(hdr.MerkleRoot, tx.ID(), r.Proofs[i]); err != nil {
			return errResp(err)
		}
		if err := tx.VerifySignature(); err != nil {
			return errResp(err)
		}
	}
	id := storage.ChunkID{Block: r.Block, Index: r.Index}
	if err := s.store.PutChunk(storage.NewChunk(id, r.Data)); err != nil {
		return errResp(err)
	}
	s.meta[id] = chunkSidecar{parts: r.Parts, txStart: r.TxStart, proofs: r.Proofs}
	return okResp()
}

func (s *Server) handleGetChunk(r *GetChunkReq) *Response {
	id := storage.ChunkID{Block: r.Block, Index: r.Index}
	chk, err := s.store.Chunk(id)
	if err != nil {
		return errResp(ErrNotFound)
	}
	m := s.meta[id]
	return &Response{Chunk: &ChunkResp{
		Index:   r.Index,
		Parts:   m.parts,
		TxStart: m.txStart,
		Data:    chk.Data,
		Proofs:  m.proofs,
	}}
}

func (s *Server) handleGetBlockChunks(r *GetBlockChunksReq) *Response {
	out := &BlockChunksResp{}
	for _, idx := range s.store.ChunksForBlock(r.Block) {
		id := storage.ChunkID{Block: r.Block, Index: idx}
		chk, err := s.store.Chunk(id)
		if err != nil {
			continue // corrupted: withhold
		}
		m := s.meta[id]
		out.Parts = m.parts
		out.Chunks = append(out.Chunks, ChunkResp{
			Index:   idx,
			Parts:   m.parts,
			TxStart: m.txStart,
			Data:    chk.Data,
			Proofs:  m.proofs,
		})
	}
	return &Response{BlockChunks: out}
}

func okResp() *Response { return &Response{OK: &struct{}{}} }

func errResp(err error) *Response { return &Response{Err: err.Error()} }

// respError converts a Response's Err field back to a Go error.
func respError(r *Response) error {
	if r.Err == "" {
		return nil
	}
	return errors.New(r.Err)
}
