package netx

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"icistrategy/internal/chain"
	"icistrategy/internal/storage"
	"icistrategy/internal/trace"
)

// drainGrace bounds how long Close waits for in-flight request/response
// pairs to complete before connection deadlines cut them off. Idle
// connections (blocked waiting for the next request frame) unblock
// immediately via the same deadline and exit quietly.
const drainGrace = 250 * time.Millisecond

// Logf is the server's structured event sink: an event name plus
// alternating key/value pairs. cmd/icinet -serve wires it to the logfmt
// stderr stream the integration harness asserts on; nil discards events.
type Logf func(event string, kv ...any)

// Server is one ICIStrategy storage node exposed over TCP. It owns a
// storage.Store plus the proof sidecar and serves the request/response
// protocol until closed. All methods are safe for concurrent use.
type Server struct {
	listener net.Listener

	mu     sync.Mutex
	store  *storage.Store
	meta   map[storage.ChunkID]chunkSidecar
	cmap   []EpochInfo // newest published cluster map (epoch-versioned membership)
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
	tr     *trace.Tracer
	logf   Logf
	faults *faultState

	// connErrs counts abnormal connection errors: read/write failures that
	// are neither a client hanging up (EOF) nor the server's own graceful
	// drain. A clean close under load keeps this at zero — the regression
	// guard for the "use of closed network connection" noise the old
	// force-close Close used to produce.
	connErrs atomic.Int64
}

type chunkSidecar struct {
	parts   int
	txStart int
	proofs  []chain.Proof
}

// NewServer starts a storage server listening on addr (use "127.0.0.1:0"
// for an ephemeral port).
func NewServer(addr string) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netx: listen %s: %w", addr, err)
	}
	s := &Server{
		listener: l,
		store:    storage.NewStore(),
		meta:     make(map[storage.ChunkID]chunkSidecar),
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// SetLogf installs (or clears, with nil) the structured event sink.
func (s *Server) SetLogf(fn Logf) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.logf = fn
}

// event emits to the installed sink, if any.
func (s *Server) event(name string, kv ...any) {
	s.mu.Lock()
	fn := s.logf
	s.mu.Unlock()
	if fn != nil {
		fn(name, kv...)
	}
}

// Close stops the listener and drains gracefully: in-flight request/
// response pairs get up to drainGrace to complete, idle connections are
// unblocked immediately, and every connection goroutine has exited by the
// time Close returns. No handler surfaces "use of closed network
// connection" — the old behavior of force-closing active connections
// mid-frame.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.listener.Close()
	deadline := time.Now().Add(drainGrace)
	for _, c := range conns {
		_ = c.SetDeadline(deadline)
	}
	s.wg.Wait()
	s.event("serve.drained", "conns", len(conns))
	return err
}

// isClosed reports whether Close has begun.
func (s *Server) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// ConnErrors returns the abnormal-connection-error count (see the field
// comment); tests assert it stays zero across a close under load.
func (s *Server) ConnErrors() int64 { return s.connErrs.Load() }

// Stats returns the server's storage accounting snapshot.
func (s *Server) Stats() storage.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.Stats()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				_ = conn.Close()
			}()
			s.serveConn(conn)
		}()
	}
}

// connErr classifies a connection failure: expected terminations (client
// hung up, graceful drain) end the connection quietly; anything else is
// counted and logged.
func (s *Server) connErr(op string, err error) {
	if err == nil {
		return
	}
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return // client disconnected between or during a frame
	}
	if errors.Is(err, os.ErrDeadlineExceeded) && s.isClosed() {
		return // drain deadline cut off an idle or straggling connection
	}
	if errors.Is(err, net.ErrClosed) && s.isClosed() {
		return // connection torn down by shutdown
	}
	s.connErrs.Add(1)
	s.event("conn.error", "op", op, "err", err.Error())
}

// serveConn handles request/response pairs until the client disconnects or
// the server drains.
func (s *Server) serveConn(conn net.Conn) {
	s.mu.Lock()
	tr := s.tr
	s.mu.Unlock()
	cw := &countConn{rw: conn}
	var last int64
	for {
		if s.isClosed() {
			return // drained: the previous round-trip completed
		}
		var req Request
		if err := readMessage(cw, &req); err != nil {
			s.connErr("read", err)
			return
		}
		var corrupt bool
		if f := s.chaosState(); f != nil && req.Fault == nil {
			d := f.decide()
			if d.delay > 0 {
				time.Sleep(d.delay)
			}
			if d.drop {
				return // drop: close without a response
			}
			corrupt = d.corrupt
		}
		resp := s.handle(&req)
		if corrupt {
			corruptChunkResponses(resp)
		}
		if err := writeMessage(cw, resp); err != nil {
			s.connErr("write", err)
			return
		}
		if tr.Enabled() {
			tr.Point(0, "netx", "serve:"+reqName(&req), clientNode, cw.n-last, resp.Err)
			last = cw.n
		}
	}
}

func (s *Server) handle(req *Request) *Response {
	if req.Fault != nil {
		f := s.chaosState()
		if f == nil {
			return errResp(fmt.Errorf("%w: chaos not enabled on this server", ErrBadRequest))
		}
		return s.handleFault(f, req.Fault)
	}
	if req.GetClusterMap != nil || req.SetClusterMap != nil {
		return s.handleClusterMap(req)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case req.PutHeader != nil:
		s.store.PutHeader(req.PutHeader.Header)
		return okResp()
	case req.PutChunk != nil:
		return s.handlePutChunk(req.PutChunk)
	case req.GetHeaders != nil:
		var out []chain.Header
		for _, h := range s.store.Headers() {
			if h.Height >= req.GetHeaders.FromHeight {
				out = append(out, h)
			}
		}
		return &Response{Headers: out}
	case req.GetChunk != nil:
		return s.handleGetChunk(req.GetChunk)
	case req.GetChunkBatch != nil:
		return s.handleGetChunkBatch(req.GetChunkBatch)
	case req.GetBlockChunks != nil:
		return s.handleGetBlockChunks(req.GetBlockChunks)
	case req.GetTxProof != nil:
		return s.handleGetTxProof(req.GetTxProof)
	case req.Stats != nil:
		st := s.store.Stats()
		return &Response{Stats: &StatsResp{
			HeaderCount: st.HeaderCount,
			HeaderBytes: st.HeaderBytes,
			ChunkCount:  st.ChunkCount,
			ChunkBytes:  st.ChunkBytes,
		}}
	default:
		return errResp(ErrBadRequest)
	}
}

// handleClusterMap serves the epoch-versioned membership ops. A published
// map is kept only when newer than the one held (by final epoch number);
// stale or duplicate publishes are acknowledged without effect, so
// republishing after partitions or restarts is always safe.
func (s *Server) handleClusterMap(req *Request) *Response {
	if req.GetClusterMap != nil {
		s.mu.Lock()
		out := append([]EpochInfo(nil), s.cmap...)
		s.mu.Unlock()
		return &Response{ClusterMap: &ClusterMapResp{Epochs: out}}
	}
	r := req.SetClusterMap
	if len(r.Epochs) == 0 || len(r.Epochs) > maxMapEpochs {
		return errResp(fmt.Errorf("%w: cluster map with %d epochs", ErrBadRequest, len(r.Epochs)))
	}
	for i, e := range r.Epochs {
		if e.Epoch != i {
			return errResp(fmt.Errorf("%w: epoch %d at position %d", ErrBadRequest, e.Epoch, i))
		}
		if len(e.Members) == 0 {
			return errResp(fmt.Errorf("%w: epoch %d has no members", ErrBadRequest, i))
		}
	}
	newest := r.Epochs[len(r.Epochs)-1].Epoch
	s.mu.Lock()
	if len(s.cmap) > 0 && newest <= s.cmap[len(s.cmap)-1].Epoch {
		s.mu.Unlock()
		return okResp() // stale or duplicate publish: keep what we have
	}
	s.cmap = append([]EpochInfo(nil), r.Epochs...)
	s.mu.Unlock()
	s.event("clustermap.update", "epoch", newest, "members", len(r.Epochs[len(r.Epochs)-1].Members))
	return okResp()
}

func (s *Server) handlePutChunk(r *PutChunkReq) *Response {
	if len(r.Data) == 0 || r.Parts <= 0 || r.Index < 0 || r.Index >= r.Parts {
		return errResp(ErrBadRequest)
	}
	// The server verifies what it stores: the chunk must decode and every
	// transaction must prove into the already-stored header's root.
	hdr, err := s.store.Header(r.Block)
	if err != nil {
		return errResp(fmt.Errorf("store chunk: header unknown: %w", ErrNotFound))
	}
	txs, err := chain.DecodeBody(r.Data)
	if err != nil {
		return errResp(fmt.Errorf("%w: %v", ErrBadRequest, err))
	}
	if len(txs) != len(r.Proofs) {
		return errResp(fmt.Errorf("%w: %d txs, %d proofs", ErrBadRequest, len(txs), len(r.Proofs)))
	}
	for i, tx := range txs {
		if r.Proofs[i].LeafIndex != r.TxStart+i {
			return errResp(fmt.Errorf("%w: proof index mismatch", ErrBadRequest))
		}
		if err := chain.VerifyProof(hdr.MerkleRoot, tx.ID(), r.Proofs[i]); err != nil {
			return errResp(err)
		}
		if err := tx.VerifySignature(); err != nil {
			return errResp(err)
		}
	}
	id := storage.ChunkID{Block: r.Block, Index: r.Index}
	if err := s.store.PutChunk(storage.NewChunk(id, r.Data)); err != nil {
		return errResp(err)
	}
	s.meta[id] = chunkSidecar{parts: r.Parts, txStart: r.TxStart, proofs: r.Proofs}
	return okResp()
}

func (s *Server) handleGetChunk(r *GetChunkReq) *Response {
	id := storage.ChunkID{Block: r.Block, Index: r.Index}
	chk, err := s.store.Chunk(id)
	if err != nil {
		return errResp(ErrNotFound)
	}
	m := s.meta[id]
	return &Response{Chunk: &ChunkResp{
		Index:   r.Index,
		Parts:   m.parts,
		TxStart: m.txStart,
		Data:    chk.Data,
		Proofs:  m.proofs,
	}}
}

// handleGetChunkBatch answers a batch fetch position-for-position; chunks
// this server does not hold are reported Found=false, never an error — the
// gateway treats holes as "ask another owner", not as failures.
func (s *Server) handleGetChunkBatch(r *ChunkBatchReq) *Response {
	if len(r.Refs) == 0 || len(r.Refs) > maxBatchRefs {
		return errResp(fmt.Errorf("%w: batch of %d refs", ErrBadRequest, len(r.Refs)))
	}
	out := &ChunkBatchResp{
		Found:  make([]bool, len(r.Refs)),
		Chunks: make([]ChunkResp, len(r.Refs)),
	}
	for i, ref := range r.Refs {
		id := storage.ChunkID{Block: ref.Block, Index: ref.Index}
		chk, err := s.store.Chunk(id)
		if err != nil {
			continue // missing or corrupted: withhold this position
		}
		m := s.meta[id]
		out.Found[i] = true
		out.Chunks[i] = ChunkResp{
			Index:   ref.Index,
			Parts:   m.parts,
			TxStart: m.txStart,
			Data:    chk.Data,
			Proofs:  m.proofs,
		}
	}
	return &Response{ChunkBatch: out}
}

// handleGetTxProof scans this server's chunks of the block for the
// transaction and answers with it plus its stored Merkle proof — the
// light-client path: the response is verifiable against the block header
// alone, and no whole block crosses the wire.
func (s *Server) handleGetTxProof(r *TxProofReq) *Response {
	for _, idx := range s.store.ChunksForBlock(r.Block) {
		id := storage.ChunkID{Block: r.Block, Index: idx}
		chk, err := s.store.Chunk(id)
		if err != nil {
			continue
		}
		m := s.meta[id]
		txs, derr := chain.DecodeBody(chk.Data)
		if derr != nil {
			continue
		}
		for i, tx := range txs {
			if tx.ID() == r.TxID && i < len(m.proofs) {
				return &Response{TxProof: &TxProofResp{Found: true, Tx: tx, Proof: m.proofs[i]}}
			}
		}
	}
	return &Response{TxProof: &TxProofResp{}}
}

func (s *Server) handleGetBlockChunks(r *GetBlockChunksReq) *Response {
	out := &BlockChunksResp{}
	for _, idx := range s.store.ChunksForBlock(r.Block) {
		id := storage.ChunkID{Block: r.Block, Index: idx}
		chk, err := s.store.Chunk(id)
		if err != nil {
			continue // corrupted: withhold
		}
		m := s.meta[id]
		out.Parts = m.parts
		out.Chunks = append(out.Chunks, ChunkResp{
			Index:   idx,
			Parts:   m.parts,
			TxStart: m.txStart,
			Data:    chk.Data,
			Proofs:  m.proofs,
		})
	}
	return &Response{BlockChunks: out}
}

func okResp() *Response { return &Response{OK: &struct{}{}} }

func errResp(err error) *Response { return &Response{Err: err.Error()} }

// respError converts a Response's Err field back to a Go error.
func respError(r *Response) error {
	if r.Err == "" {
		return nil
	}
	return errors.New(r.Err)
}
