package netx

import (
	"testing"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/chain"
)

// fullyReplicate stores every chunk of every block on every server (r = n),
// so any single server can answer any batch or proof query deterministically.
func fullyReplicate(t *testing.T, addrs []string, blocks []*chain.Block) *Cluster {
	t.Helper()
	cl, err := NewCluster(addrs, len(addrs))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	for _, b := range blocks {
		if err := cl.DistributeBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	return cl
}

func TestGetChunkBatchPositionForPosition(t *testing.T) {
	_, addrs := startServers(t, 3)
	blocks := testBlocks(t, 2, 24)
	fullyReplicate(t, addrs, blocks)

	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Mix chunks from two blocks, a repeated ref, and a miss in the middle.
	refs := []ChunkRef{
		{Block: blocks[0].Hash(), Index: 0},
		{Block: blocks[1].Hash(), Index: 2},
		{Block: blockcrypto.Hash{0xde, 0xad}, Index: 0}, // unknown block
		{Block: blocks[0].Hash(), Index: 0},             // duplicate of refs[0]
		{Block: blocks[0].Hash(), Index: 999},           // unknown index
	}
	resp, err := c.GetChunkBatch(refs)
	if err != nil {
		t.Fatal(err)
	}
	wantFound := []bool{true, true, false, true, false}
	for i, want := range wantFound {
		if resp.Found[i] != want {
			t.Fatalf("Found[%d] = %v, want %v", i, resp.Found[i], want)
		}
	}
	if resp.Chunks[0].Index != 0 || len(resp.Chunks[0].Data) == 0 {
		t.Fatalf("Chunks[0] = %+v", resp.Chunks[0])
	}
	if resp.Chunks[1].Index != 2 {
		t.Fatalf("Chunks[1].Index = %d, want 2", resp.Chunks[1].Index)
	}
	if len(resp.Chunks[2].Data) != 0 {
		t.Fatal("missing ref carried data")
	}
	// The duplicate answers identically to the original.
	if string(resp.Chunks[3].Data) != string(resp.Chunks[0].Data) {
		t.Fatal("duplicate ref answered differently")
	}

	// Single-ref batch matches GetChunk for the same chunk.
	single, err := c.GetChunk(blocks[0].Hash(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if string(single.Data) != string(resp.Chunks[0].Data) {
		t.Fatal("batch chunk differs from GetChunk")
	}
}

func TestGetChunkBatchRejectsEmptyAndOversized(t *testing.T) {
	_, addrs := startServers(t, 1)
	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.GetChunkBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	huge := make([]ChunkRef, maxBatchRefs+1)
	if _, err := c.GetChunkBatch(huge); err == nil {
		t.Fatal("oversized batch accepted")
	}
}

func TestGetTxProofFoundAndVerifiable(t *testing.T) {
	_, addrs := startServers(t, 3)
	blocks := testBlocks(t, 1, 17)
	fullyReplicate(t, addrs, blocks)
	b := blocks[0]

	c, err := Dial(addrs[1])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// A transaction from the middle of the block, so it sits inside a chunk
	// rather than at a boundary.
	tx := b.Txs[len(b.Txs)/2]
	resp, err := c.GetTxProof(b.Hash(), tx.ID())
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Found || resp.Tx == nil {
		t.Fatalf("tx not found: %+v", resp)
	}
	if resp.Tx.ID() != tx.ID() {
		t.Fatal("returned a different transaction")
	}
	if err := chain.VerifyProof(b.Header.MerkleRoot, resp.Tx.ID(), resp.Proof); err != nil {
		t.Fatalf("proof does not verify: %v", err)
	}
}

func TestGetTxProofNotFound(t *testing.T) {
	_, addrs := startServers(t, 2)
	blocks := testBlocks(t, 1, 8)
	fullyReplicate(t, addrs, blocks)

	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Known block, unknown transaction.
	resp, err := c.GetTxProof(blocks[0].Hash(), blockcrypto.Hash{0xff})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Found {
		t.Fatal("found a transaction that does not exist")
	}

	// Unknown block: also a clean not-found, not a protocol error.
	resp, err = c.GetTxProof(blockcrypto.Hash{0xab}, blockcrypto.Hash{0xff})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Found {
		t.Fatal("found a transaction in a block nobody stored")
	}
}

func TestBatchRespShapeValidated(t *testing.T) {
	// The response is position-for-position with the request; the client
	// validates the shape so a buggy server cannot cause out-of-range reads.
	_, addrs := startServers(t, 1)
	blocks := testBlocks(t, 1, 6)
	fullyReplicate(t, addrs[:1], blocks)
	c, err := Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.GetChunkBatch([]ChunkRef{{Block: blocks[0].Hash(), Index: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Found) != 1 || len(resp.Chunks) != 1 {
		t.Fatalf("response shape %d/%d, want 1/1", len(resp.Found), len(resp.Chunks))
	}
}
