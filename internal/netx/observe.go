package netx

import (
	"io"

	"icistrategy/internal/trace"
)

// clientNode is the trace node label for the client side of the TCP
// protocol — clients are not cluster members and have no NodeID.
const clientNode = -1

// countConn counts the bytes crossing a connection in both directions, so a
// round-trip span can report its true wire cost (frames included).
type countConn struct {
	rw io.ReadWriter
	n  int64
}

func (c *countConn) Read(p []byte) (int, error) {
	n, err := c.rw.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countConn) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	c.n += int64(n)
	return n, err
}

// reqName labels a request union for tracing.
func reqName(r *Request) string {
	switch {
	case r.PutHeader != nil:
		return "put-header"
	case r.PutChunk != nil:
		return "put-chunk"
	case r.GetHeaders != nil:
		return "get-headers"
	case r.GetChunk != nil:
		return "get-chunk"
	case r.GetChunkBatch != nil:
		return "get-chunk-batch"
	case r.GetBlockChunks != nil:
		return "get-block-chunks"
	case r.GetTxProof != nil:
		return "get-txproof"
	case r.GetClusterMap != nil:
		return "get-cluster-map"
	case r.SetClusterMap != nil:
		return "set-cluster-map"
	case r.Stats != nil:
		return "stats"
	case r.Fault != nil:
		return "fault"
	default:
		return "unknown"
	}
}

// SetTracer installs (or clears, with nil) the tracer used for this
// client's round-trips; parent is the span every round-trip nests under.
func (c *Client) SetTracer(tr *trace.Tracer, parent trace.SpanID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tr, c.parent = tr, parent
}

// SetTracer installs (or clears) the tracer for whole-cluster operations.
// DistributeBlock and RetrieveBlock then open one span per call, with a
// child span per TCP round-trip carrying the actual wire byte counts.
func (cl *Cluster) SetTracer(tr *trace.Tracer) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.tr = tr
}

// tracer returns the cluster's tracer (nil-safe for use as *Tracer).
func (cl *Cluster) tracer() *trace.Tracer {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.tr
}

// tracedClient returns a connection to addr with its round-trips parented
// under parent.
func (cl *Cluster) tracedClient(addr string, parent trace.SpanID) (*Client, error) {
	c, err := cl.client(addr)
	if err != nil {
		return nil, err
	}
	c.SetTracer(cl.tracer(), parent)
	return c, nil
}

// SetTracer installs (or clears) the tracer for served requests: every
// handled request emits one point event with its request-plus-response wire
// size.
func (s *Server) SetTracer(tr *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tr = tr
}
