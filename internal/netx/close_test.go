package netx

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCloseDrainsUnderConcurrentLoad is the regression test for the Close
// race: closing a server while handlers are mid-frame must drain
// gracefully — no "use of closed network connection" surfacing from
// handler goroutines (ConnErrors stays zero) and no client ever receiving
// a truncated response frame (a request that was accepted is answered in
// full). Run under -race in CI.
func TestCloseDrainsUnderConcurrentLoad(t *testing.T) {
	servers, addrs := startServers(t, 1)
	srv := servers[0]

	const clients = 8
	var truncated atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c, err := Dial(addrs[0])
				if err != nil {
					return // listener gone: shutdown reached the dialer
				}
				for {
					if _, err := c.Stats(); err != nil {
						// A client must never observe a half-written
						// response: that would mean the server cut a
						// handler off mid-frame.
						if errors.Is(err, io.ErrUnexpectedEOF) {
							truncated.Add(1)
						}
						break
					}
				}
				_ = c.Close()
			}
		}()
	}

	time.Sleep(50 * time.Millisecond) // let the load build
	if err := srv.Close(); err != nil {
		t.Fatalf("close under load: %v", err)
	}
	close(stop)
	wg.Wait()

	if n := srv.ConnErrors(); n != 0 {
		t.Fatalf("server recorded %d abnormal connection errors during drain", n)
	}
	if n := truncated.Load(); n != 0 {
		t.Fatalf("%d clients saw truncated response frames", n)
	}
}

// TestCloseIdempotentAndUnblocksIdleConns: idle connections (blocked
// waiting for the next request) must not stall Close, and double-Close is
// a no-op.
func TestCloseIdempotentAndUnblocksIdleConns(t *testing.T) {
	servers, addrs := startServers(t, 1)
	srv := servers[0]
	// Park three idle connections on the server.
	for i := 0; i < 3; i++ {
		c, err := Dial(addrs[0])
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Stats(); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on idle connections")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if n := srv.ConnErrors(); n != 0 {
		t.Fatalf("idle drain recorded %d abnormal errors", n)
	}
}
