// Package trace is the structured protocol-tracing layer of the repo: a
// span/event API that every ICI protocol path (distribution, verification,
// retrieval, bootstrap, repair, coded archival), the consensus vote rounds,
// the discrete-event simulator, and the real-TCP layer emit into.
//
// A Span covers one logical operation (one block's distribution, one
// retrieval) and may have children: the span context (a SpanID) rides on
// simnet messages, so a block's whole fan-out — chunk sends, verify spans
// on members, votes, the commit broadcast — hangs under one root and can be
// read as a single tree. Point events record instantaneous facts (a vote
// counted, a share stored) inside the same tree.
//
// Tracing is opt-in and built to cost nothing when off: the zero Span is a
// valid no-op, every Tracer method is nil-receiver-safe, and instrumented
// code guards its span construction behind Enabled(). The Ring recorder
// (ring.go) keeps the last N events under a single short-critical-section
// mutex, so concurrent emitters (the TCP layer) stay race-free while the
// single-threaded simulator pays only the uncontended lock.
//
// Determinism: span IDs are assigned in emission order and timestamps come
// from the tracer's clock. With the simulator's virtual clock, two runs of
// the same seeded simulation produce byte-identical event sequences — the
// property the determinism tests pin.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// SpanID identifies one span in a trace. 0 means "no span" (a root, or a
// disabled tracer) and is never assigned.
type SpanID uint64

// Event is one recorded trace record: a completed span, or a point event
// (Point true, End == Start).
type Event struct {
	// ID is the event's own span ID; Parent links it into the tree (0 for
	// roots).
	ID     SpanID
	Parent SpanID
	// Name is the operation, e.g. "retrieve" or "ici/chunk".
	Name string
	// Proto is the protocol-family label phases aggregate by: "distribute",
	// "verify", "retrieve", "bootstrap", "repair", "archive", "consensus",
	// "net", "netx".
	Proto string
	// Node is the emitting node's ID, or -1 when no node applies.
	Node int64
	// Start and End are clock readings (virtual time in the simulator,
	// wall time since tracer creation on the TCP path).
	Start, End time.Duration
	// Bytes annotates the event with a payload size (wire bytes for message
	// events, body bytes for protocol ops).
	Bytes int64
	// Err is the outcome annotation: empty for success.
	Err string
	// Point marks an instantaneous event.
	Point bool
}

// Recorder consumes completed events. Implementations must be safe for
// concurrent use.
type Recorder interface {
	Record(Event)
}

// Tracer mints spans and forwards completed events to its recorder. A nil
// *Tracer is a valid, disabled tracer: every method is nil-receiver-safe
// and Start returns the no-op zero Span, so instrumented code needs no
// branching beyond what the method calls already do.
type Tracer struct {
	rec    Recorder
	nextID atomic.Uint64
	// clock is read at span start/end. Stored atomically so a System can
	// re-point an already-shared tracer at its virtual clock.
	clock atomic.Value // func() time.Duration
}

// New creates a tracer emitting into rec. A nil rec yields a disabled
// tracer (identical to a nil *Tracer). The default clock is wall time
// since New was called; see SetClock.
func New(rec Recorder) *Tracer {
	if rec == nil {
		return nil
	}
	t := &Tracer{rec: rec}
	// Wall time is only the fallback for the real-TCP path; the simulator
	// immediately re-points the clock at virtual time via SetClock, which
	// is what keeps seeded span forests byte-identical.
	start := time.Now()                                              //icilint:allow determinism(default wall clock; simulator installs its virtual clock via SetClock)
	t.clock.Store(func() time.Duration { return time.Since(start) }) //icilint:allow determinism(default wall clock; simulator installs its virtual clock via SetClock)
	return t
}

// SetClock replaces the tracer's time source. The discrete-event simulator
// installs its virtual clock here so span timestamps are deterministic.
func (t *Tracer) SetClock(clock func() time.Duration) {
	if t == nil || clock == nil {
		return
	}
	t.clock.Store(clock)
}

// Enabled reports whether spans will be recorded.
func (t *Tracer) Enabled() bool { return t != nil && t.rec != nil }

func (t *Tracer) now() time.Duration {
	return t.clock.Load().(func() time.Duration)()
}

// Start opens a span under parent (0 for a root). On a disabled tracer it
// returns the zero Span, whose every method is a no-op.
func (t *Tracer) Start(parent SpanID, proto, name string, node int64) Span {
	if !t.Enabled() {
		return Span{}
	}
	return Span{
		tr:     t,
		id:     SpanID(t.nextID.Add(1)),
		parent: parent,
		proto:  proto,
		name:   name,
		node:   node,
		start:  t.now(),
	}
}

// Point records an instantaneous event under parent.
func (t *Tracer) Point(parent SpanID, proto, name string, node int64, bytes int64, err string) {
	if !t.Enabled() {
		return
	}
	now := t.now()
	t.rec.Record(Event{
		ID:     SpanID(t.nextID.Add(1)),
		Parent: parent,
		Name:   name,
		Proto:  proto,
		Node:   node,
		Start:  now,
		End:    now,
		Bytes:  bytes,
		Err:    err,
		Point:  true,
	})
}

// Emit records a fully-formed event, assigning its ID. The simulator uses
// it for message-delivery events whose start time predates the call.
func (t *Tracer) Emit(e Event) {
	if !t.Enabled() {
		return
	}
	e.ID = SpanID(t.nextID.Add(1))
	t.rec.Record(e)
}

// Span is one in-flight operation. The zero Span (from a disabled tracer)
// is valid: every method is a no-op and Context returns 0.
type Span struct {
	tr     *Tracer
	id     SpanID
	parent SpanID
	proto  string
	name   string
	node   int64
	start  time.Duration
	bytes  int64
	err    string
	ended  bool
}

// Active reports whether the span will record anything.
func (s *Span) Active() bool { return s.tr != nil && !s.ended }

// Context returns the span's ID for propagation (onto messages, to child
// spans); 0 when disabled.
func (s *Span) Context() SpanID { return s.id }

// AddBytes accumulates payload bytes onto the span.
func (s *Span) AddBytes(n int64) {
	if s.tr != nil {
		s.bytes += n
	}
}

// SetErr annotates the span's outcome; a nil error clears it.
func (s *Span) SetErr(err error) {
	if s.tr == nil {
		return
	}
	if err == nil {
		s.err = ""
	} else {
		s.err = err.Error()
	}
}

// End completes the span and records it. End is idempotent — protocol
// callbacks with multiple terminal paths can all call it safely.
func (s *Span) End() {
	if s.tr == nil || s.ended {
		return
	}
	s.ended = true
	s.tr.rec.Record(Event{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Proto:  s.proto,
		Node:   s.node,
		Start:  s.start,
		End:    s.tr.now(),
		Bytes:  s.bytes,
		Err:    s.err,
	})
}

// --- aggregation -------------------------------------------------------------

// PhaseStats is the per-protocol-phase rollup Summarize produces: how many
// spans and point events a phase recorded, the wire traffic attributed to
// its trees, and the span-latency profile.
type PhaseStats struct {
	Proto string
	// Spans counts completed (non-point, non-wire) spans of this phase.
	Spans int
	// Points counts instantaneous events of this phase.
	Points int
	// Bytes sums the Bytes annotation of the phase's own spans and points.
	Bytes int64
	// WireMsgs / WireBytes count "net"-proto message events whose span tree
	// roots in this phase — the communication the phase actually caused.
	WireMsgs  int
	WireBytes int64
	// Errs counts events with a non-empty Err.
	Errs int
	// MeanLatency / MaxLatency profile the phase's span durations.
	MeanLatency time.Duration
	MaxLatency  time.Duration
}

// Summarize rolls events up into one PhaseStats per Proto label, with wire
// traffic ("net"/"netx" message events) attributed to the protocol phase
// their span tree hangs under. Phases are returned sorted by name. Events
// whose parents were evicted from a wrapped ring attribute to their own
// proto.
func Summarize(events []Event) []PhaseStats {
	proto := make(map[SpanID]string, len(events))
	parent := make(map[SpanID]SpanID, len(events))
	for _, e := range events {
		proto[e.ID] = e.Proto
		parent[e.ID] = e.Parent
	}
	// phaseOf resolves a wire event to the nearest ancestor with a
	// non-wire proto label.
	phaseOf := func(e Event) string {
		p := e.Parent
		for hops := 0; hops < 64 && p != 0; hops++ {
			if pr, ok := proto[p]; ok && pr != "net" && pr != "netx" {
				return pr
			}
			p = parent[p]
		}
		return e.Proto
	}
	acc := make(map[string]*PhaseStats)
	get := func(name string) *PhaseStats {
		ps, ok := acc[name]
		if !ok {
			ps = &PhaseStats{Proto: name}
			acc[name] = ps
		}
		return ps
	}
	var latSum = make(map[string]time.Duration)
	for _, e := range events {
		if e.Proto == "net" || e.Proto == "netx" {
			ps := get(phaseOf(e))
			ps.WireMsgs++
			ps.WireBytes += e.Bytes
			if e.Err != "" {
				ps.Errs++
			}
			continue
		}
		ps := get(e.Proto)
		if e.Err != "" {
			ps.Errs++
		}
		ps.Bytes += e.Bytes
		if e.Point {
			ps.Points++
			continue
		}
		ps.Spans++
		d := e.End - e.Start
		latSum[e.Proto] += d
		if d > ps.MaxLatency {
			ps.MaxLatency = d
		}
	}
	out := make([]PhaseStats, 0, len(acc))
	for name, ps := range acc {
		if ps.Spans > 0 {
			ps.MeanLatency = latSum[name] / time.Duration(ps.Spans)
		}
		out = append(out, *ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Proto < out[j].Proto })
	return out
}

// Tree renders events as an indented span forest in start order — the
// human-readable trace dump -trace prints under -verbose. Wire ("net")
// events collapse into a per-parent message count to keep dumps readable.
func Tree(events []Event) string {
	children := make(map[SpanID][]Event)
	known := make(map[SpanID]bool, len(events))
	for _, e := range events {
		if !e.Point || e.Proto != "net" {
			known[e.ID] = true
		}
	}
	wireCount := make(map[SpanID]int)
	wireBytes := make(map[SpanID]int64)
	var roots []Event
	for _, e := range events {
		if e.Proto == "net" {
			wireCount[e.Parent]++
			wireBytes[e.Parent] += e.Bytes
			continue
		}
		if e.Parent != 0 && known[e.Parent] {
			children[e.Parent] = append(children[e.Parent], e)
		} else {
			roots = append(roots, e)
		}
	}
	byStart := func(evs []Event) {
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].Start != evs[j].Start {
				return evs[i].Start < evs[j].Start
			}
			return evs[i].ID < evs[j].ID
		})
	}
	byStart(roots)
	var b strings.Builder
	var render func(e Event, depth int)
	render = func(e Event, depth int) {
		fmt.Fprintf(&b, "%s%s/%s node=%d", strings.Repeat("  ", depth), e.Proto, e.Name, e.Node)
		if e.Point {
			fmt.Fprintf(&b, " @%v", e.Start)
		} else {
			fmt.Fprintf(&b, " %v..%v (%v)", e.Start, e.End, e.End-e.Start)
		}
		if e.Bytes > 0 {
			fmt.Fprintf(&b, " %dB", e.Bytes)
		}
		if e.Err != "" {
			fmt.Fprintf(&b, " err=%q", e.Err)
		}
		if wc := wireCount[e.ID]; wc > 0 {
			fmt.Fprintf(&b, " wire=%d msgs/%dB", wc, wireBytes[e.ID])
		}
		b.WriteByte('\n')
		kids := children[e.ID]
		byStart(kids)
		for _, k := range kids {
			render(k, depth+1)
		}
	}
	for _, r := range roots {
		render(r, 0)
	}
	return b.String()
}
