package trace

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a settable deterministic clock for tests.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) fn() func() time.Duration { return func() time.Duration { return c.now } }

func TestDisabledTracerIsNoOp(t *testing.T) {
	var tr *Tracer // nil tracer: fully disabled
	if tr.Enabled() {
		t.Fatal("nil tracer reports Enabled")
	}
	sp := tr.Start(0, "retrieve", "retrieve", 3)
	if sp.Active() {
		t.Fatal("span from nil tracer is active")
	}
	if sp.Context() != 0 {
		t.Fatalf("span from nil tracer has context %d", sp.Context())
	}
	// None of these may panic.
	sp.AddBytes(100)
	sp.SetErr(fmt.Errorf("boom"))
	sp.End()
	sp.End()
	tr.Point(0, "retrieve", "x", 1, 0, "")
	tr.Emit(Event{Name: "x"})
	tr.SetClock(func() time.Duration { return 0 })

	if got := New(nil); got != nil {
		t.Fatal("New(nil) should return a nil (disabled) tracer")
	}
}

func TestSpanLifecycle(t *testing.T) {
	ring := NewRing(16)
	tr := New(ring)
	clk := &fakeClock{}
	tr.SetClock(clk.fn())

	root := tr.Start(0, "distribute", "produce", 0)
	clk.now = 5 * time.Millisecond
	child := tr.Start(root.Context(), "verify", "chunk", 2)
	child.AddBytes(128)
	child.SetErr(fmt.Errorf("bad proof"))
	clk.now = 7 * time.Millisecond
	child.End()
	child.End() // idempotent
	root.AddBytes(1000)
	clk.now = 9 * time.Millisecond
	root.End()

	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	// Children end before parents, so the child is recorded first.
	c, r := evs[0], evs[1]
	if c.Parent != r.ID {
		t.Fatalf("child parent %d != root id %d", c.Parent, r.ID)
	}
	if c.Name != "chunk" || c.Proto != "verify" || c.Node != 2 {
		t.Fatalf("child labels wrong: %+v", c)
	}
	if c.Bytes != 128 || c.Err != "bad proof" {
		t.Fatalf("child annotations wrong: %+v", c)
	}
	if c.Start != 5*time.Millisecond || c.End != 7*time.Millisecond {
		t.Fatalf("child times wrong: %+v", c)
	}
	if r.Start != 0 || r.End != 9*time.Millisecond || r.Bytes != 1000 {
		t.Fatalf("root wrong: %+v", r)
	}
}

func TestPointEvent(t *testing.T) {
	ring := NewRing(4)
	tr := New(ring)
	clk := &fakeClock{now: 3 * time.Second}
	tr.SetClock(clk.fn())
	tr.Point(7, "consensus", "vote", 5, 64, "")
	evs := ring.Events()
	if len(evs) != 1 {
		t.Fatalf("got %d events", len(evs))
	}
	e := evs[0]
	if !e.Point || e.Parent != 7 || e.Start != e.End || e.Start != 3*time.Second || e.Bytes != 64 {
		t.Fatalf("point event wrong: %+v", e)
	}
}

func TestRingWraparound(t *testing.T) {
	ring := NewRing(4)
	for i := 0; i < 10; i++ {
		ring.Record(Event{ID: SpanID(i + 1)})
	}
	if got := ring.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	evs := ring.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, e := range evs {
		want := SpanID(7 + i) // oldest retained is the 7th record
		if e.ID != want {
			t.Fatalf("event %d has ID %d, want %d (oldest-first order)", i, e.ID, want)
		}
	}

	ring.Reset()
	if ring.Total() != 0 || len(ring.Events()) != 0 {
		t.Fatal("Reset did not clear the ring")
	}

	// Capacity is clamped to at least one slot.
	tiny := NewRing(0)
	tiny.Record(Event{ID: 1})
	tiny.Record(Event{ID: 2})
	if evs := tiny.Events(); len(evs) != 1 || evs[0].ID != 2 {
		t.Fatalf("clamped ring wrong: %+v", evs)
	}
}

func TestConcurrentEmission(t *testing.T) {
	// Hammer one tracer+ring from many goroutines; run under -race this
	// validates the recorder's locking and the atomic ID allocation.
	ring := NewRing(256)
	tr := New(ring)
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Start(0, "netx", "req", int64(w))
				sp.AddBytes(int64(i))
				sp.End()
				tr.Point(sp.Context(), "netx", "resp", int64(w), 1, "")
			}
		}(w)
	}
	wg.Wait()
	if got := ring.Total(); got != workers*perWorker*2 {
		t.Fatalf("Total = %d, want %d", got, workers*perWorker*2)
	}
	seen := make(map[SpanID]bool)
	for _, e := range ring.Events() {
		if e.ID == 0 {
			t.Fatal("recorded event with zero ID")
		}
		if seen[e.ID] {
			t.Fatalf("duplicate span ID %d", e.ID)
		}
		seen[e.ID] = true
	}
}

func TestSummarize(t *testing.T) {
	evs := []Event{
		{ID: 1, Name: "produce", Proto: "distribute", Node: 0, Start: 0, End: 10 * time.Millisecond, Bytes: 500},
		{ID: 2, Parent: 1, Name: "ici/chunk", Proto: "net", Node: 1, Bytes: 200},
		{ID: 3, Parent: 2, Name: "verify", Proto: "verify", Node: 1, Start: 2 * time.Millisecond, End: 4 * time.Millisecond},
		{ID: 4, Parent: 3, Name: "vote", Proto: "consensus", Node: 1, Point: true},
		{ID: 5, Parent: 1, Name: "ici/vote", Proto: "net", Node: 0, Bytes: 64, Err: "dropped"},
		{ID: 6, Name: "retrieve", Proto: "retrieve", Node: 2, Start: 0, End: 30 * time.Millisecond, Err: "timeout"},
	}
	phases := Summarize(evs)
	find := func(name string) PhaseStats {
		for _, p := range phases {
			if p.Proto == name {
				return p
			}
		}
		t.Fatalf("phase %q missing from %+v", name, phases)
		return PhaseStats{}
	}
	d := find("distribute")
	if d.Spans != 1 || d.Bytes != 500 {
		t.Fatalf("distribute: %+v", d)
	}
	// Both wire events hang under the distribute root (one directly, one via
	// nothing between), so they attribute there.
	if d.WireMsgs != 2 || d.WireBytes != 264 || d.Errs != 1 {
		t.Fatalf("distribute wire attribution: %+v", d)
	}
	v := find("verify")
	if v.Spans != 1 || v.MeanLatency != 2*time.Millisecond || v.MaxLatency != 2*time.Millisecond {
		t.Fatalf("verify: %+v", v)
	}
	c := find("consensus")
	if c.Points != 1 || c.Spans != 0 {
		t.Fatalf("consensus: %+v", c)
	}
	r := find("retrieve")
	if r.Errs != 1 || r.MeanLatency != 30*time.Millisecond {
		t.Fatalf("retrieve: %+v", r)
	}
	// Sorted by name.
	for i := 1; i < len(phases); i++ {
		if phases[i-1].Proto > phases[i].Proto {
			t.Fatalf("phases not sorted: %+v", phases)
		}
	}
}

func TestSummarizeOrphanWireEvent(t *testing.T) {
	// A wire event whose ancestors were evicted from the ring attributes to
	// its own proto instead of being lost.
	evs := []Event{{ID: 9, Parent: 4, Name: "ici/chunk", Proto: "net", Bytes: 10}}
	phases := Summarize(evs)
	if len(phases) != 1 || phases[0].Proto != "net" || phases[0].WireMsgs != 1 {
		t.Fatalf("orphan wire event: %+v", phases)
	}
}

func TestTreeRendering(t *testing.T) {
	evs := []Event{
		{ID: 3, Parent: 1, Name: "verify", Proto: "verify", Node: 1, Start: 2 * time.Millisecond, End: 4 * time.Millisecond},
		{ID: 1, Name: "produce", Proto: "distribute", Node: 0, Start: 0, End: 10 * time.Millisecond, Bytes: 500},
		{ID: 2, Parent: 1, Name: "ici/chunk", Proto: "net", Node: 1, Bytes: 200},
		{ID: 4, Parent: 3, Name: "vote", Proto: "consensus", Node: 1, Point: true, Start: 3 * time.Millisecond, End: 3 * time.Millisecond},
	}
	out := Tree(evs)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "distribute/produce") {
		t.Fatalf("root line: %q", lines[0])
	}
	if !strings.Contains(lines[0], "wire=1 msgs/200B") {
		t.Fatalf("wire rollup missing: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  verify/verify") {
		t.Fatalf("child indentation: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "    consensus/vote") || !strings.Contains(lines[2], "@3ms") {
		t.Fatalf("point rendering: %q", lines[2])
	}
}

func TestTreeOrphanBecomesRoot(t *testing.T) {
	evs := []Event{{ID: 5, Parent: 2, Name: "verify", Proto: "verify", Node: 1}}
	out := Tree(evs)
	if !strings.HasPrefix(out, "verify/verify") {
		t.Fatalf("orphan should render as root:\n%s", out)
	}
}

func TestDefaultClockAdvances(t *testing.T) {
	ring := NewRing(2)
	tr := New(ring)
	sp := tr.Start(0, "netx", "op", -1)
	time.Sleep(time.Millisecond)
	sp.End()
	evs := ring.Events()
	if len(evs) != 1 || evs[0].End <= evs[0].Start {
		t.Fatalf("default clock did not advance: %+v", evs)
	}
}
