package trace

import "sync"

// Ring is a bounded recorder keeping the most recent events. The critical
// section is a couple of stores, so concurrent emitters (the TCP path)
// contend only briefly and the single-threaded simulator pays one
// uncontended lock per event.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total uint64
}

// NewRing returns a recorder retaining the last capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Record implements Recorder.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total reports how many events were ever recorded, including those evicted
// by wraparound — the gap versus len(Events()) tells a consumer whether the
// ring was sized too small for the run.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Reset drops all retained events and the total counter.
func (r *Ring) Reset() {
	r.mu.Lock()
	r.next = 0
	r.full = false
	r.total = 0
	r.mu.Unlock()
}
