package blockcrypto

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSum256Deterministic(t *testing.T) {
	a := Sum256([]byte("hello"))
	b := Sum256([]byte("hello"))
	if a != b {
		t.Fatalf("same input hashed to different digests: %s vs %s", a, b)
	}
	c := Sum256([]byte("hello!"))
	if a == c {
		t.Fatalf("different inputs hashed to same digest %s", a)
	}
}

func TestSumConcatMatchesSum256(t *testing.T) {
	f := func(a, b []byte) bool {
		joined := append(append([]byte{}, a...), b...)
		return SumConcat(a, b) == Sum256(joined)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHashPairOrderMatters(t *testing.T) {
	a := Sum256([]byte("a"))
	b := Sum256([]byte("b"))
	if HashPair(a, b) == HashPair(b, a) {
		t.Fatal("HashPair must not be commutative")
	}
}

func TestZeroHash(t *testing.T) {
	if !ZeroHash.IsZero() {
		t.Fatal("ZeroHash.IsZero() = false")
	}
	if Sum256(nil).IsZero() {
		t.Fatal("SHA-256 of empty input should not be the zero hash")
	}
}

func TestParseHashRoundTrip(t *testing.T) {
	h := Sum256([]byte("round trip"))
	got, err := ParseHash(h.String())
	if err != nil {
		t.Fatalf("ParseHash(%q): %v", h.String(), err)
	}
	if got != h {
		t.Fatalf("round trip mismatch: got %s want %s", got, h)
	}
}

func TestParseHashErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"odd length", "abc"},
		{"not hex", "zz"},
		{"too short", "deadbeef"},
		{"too long", Sum256(nil).String() + "00"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseHash(tc.in); err == nil {
				t.Fatalf("ParseHash(%q) succeeded, want error", tc.in)
			}
		})
	}
}

func TestShortIsPrefix(t *testing.T) {
	h := Sum256([]byte("prefix"))
	if h.String()[:8] != h.Short() {
		t.Fatalf("Short() = %q is not a prefix of String() = %q", h.Short(), h.String())
	}
}

func TestDeriveKeyPairDeterministic(t *testing.T) {
	k1 := DeriveKeyPair(42, 7)
	k2 := DeriveKeyPair(42, 7)
	if string(k1.Public) != string(k2.Public) {
		t.Fatal("same seed/index derived different keys")
	}
	k3 := DeriveKeyPair(42, 8)
	if string(k1.Public) == string(k3.Public) {
		t.Fatal("different indexes derived identical keys")
	}
	k4 := DeriveKeyPair(43, 7)
	if string(k1.Public) == string(k4.Public) {
		t.Fatal("different seeds derived identical keys")
	}
}

func TestSignVerify(t *testing.T) {
	k := DeriveKeyPair(1, 1)
	msg := []byte("block payload")
	sig := k.Sign(msg)
	if err := Verify(k.Public, msg, sig); err != nil {
		t.Fatalf("valid signature rejected: %v", err)
	}
	if err := Verify(k.Public, []byte("tampered"), sig); err == nil {
		t.Fatal("tampered message accepted")
	}
	sig[0] ^= 0xff
	if err := Verify(k.Public, msg, sig); err == nil {
		t.Fatal("tampered signature accepted")
	}
}

func TestVerifyRejectsBadKeyAndSigLengths(t *testing.T) {
	k := DeriveKeyPair(1, 2)
	msg := []byte("m")
	sig := k.Sign(msg)
	if err := Verify(k.Public[:10], msg, sig); err == nil {
		t.Fatal("short public key accepted")
	}
	if err := Verify(k.Public, msg, sig[:10]); err == nil {
		t.Fatal("short signature accepted")
	}
}

func TestPublicKeyHashDistinct(t *testing.T) {
	a := PublicKeyHash(DeriveKeyPair(9, 1).Public)
	b := PublicKeyHash(DeriveKeyPair(9, 2).Public)
	if a == b {
		t.Fatal("distinct keys share an account hash")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(5)
	f1 := parent.Fork("latency")
	f2 := parent.Fork("placement")
	if f1.Uint64() == f2.Uint64() {
		t.Fatal("differently-labelled forks produced identical first draws")
	}
	// Forking must not consume parent draws.
	p1 := NewRNG(5)
	if parent.Uint64() != p1.Uint64() {
		t.Fatal("Fork consumed a parent draw")
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(99)
	for n := 1; n <= 64; n++ {
		for i := 0; i < 100; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(21)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) returned %d elements", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRNGShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(31)
	vals := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range vals {
		sum += v
	}
	r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	got := 0
	for _, v := range vals {
		got += v
	}
	if got != sum {
		t.Fatalf("Shuffle changed multiset: sum %d -> %d", sum, got)
	}
}

func TestHashUint64UsesLeadingBytes(t *testing.T) {
	var h Hash
	h[0] = 0x01
	if h.Uint64() != 1<<56 {
		t.Fatalf("Uint64() = %x, want %x", h.Uint64(), uint64(1)<<56)
	}
}

func BenchmarkSum256_1KB(b *testing.B) {
	data := make([]byte, 1024)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Sum256(data)
	}
}

func BenchmarkSignVerify(b *testing.B) {
	k := DeriveKeyPair(1, 1)
	msg := make([]byte, 256)
	sig := k.Sign(msg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := Verify(k.Public, msg, sig); err != nil {
			b.Fatal(err)
		}
	}
}
