package blockcrypto

import "math"

// boxMullerScale computes sqrt(-2*ln(s)/s) for the polar Box-Muller
// transform in RNG.NormFloat64.
func boxMullerScale(s float64) float64 {
	return math.Sqrt(-2 * math.Log(s) / s)
}
