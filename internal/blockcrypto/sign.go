package blockcrypto

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
)

// Signature and key sizes, re-exported so callers never import crypto/ed25519
// directly.
const (
	SignatureSize = ed25519.SignatureSize
	PublicKeySize = ed25519.PublicKeySize
	SeedSize      = ed25519.SeedSize
)

var (
	// ErrBadSignature is returned when signature verification fails.
	ErrBadSignature = errors.New("blockcrypto: signature verification failed")
	// ErrBadKeyLength is returned when key material has the wrong size.
	ErrBadKeyLength = errors.New("blockcrypto: invalid key length")
)

type errInvalidHashLength int

func (e errInvalidHashLength) Error() string {
	return fmt.Sprintf("blockcrypto: invalid hash length %d, want %d", int(e), HashSize)
}

// KeyPair is an Ed25519 signing key pair.
type KeyPair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// DeriveKeyPair deterministically derives an Ed25519 key pair from a
// simulation seed and an entity index. Deterministic keys make every
// simulation run byte-for-byte reproducible; they must never be used outside
// a simulation.
func DeriveKeyPair(simSeed uint64, index uint64) KeyPair {
	var buf [16 + 8]byte
	copy(buf[:], "icistrategy/key/")
	binary.BigEndian.PutUint64(buf[16:], simSeed)
	first := Sum256(buf[:])
	binary.BigEndian.PutUint64(buf[16:], index)
	second := SumConcat(first[:], buf[16:])
	priv := ed25519.NewKeyFromSeed(second[:SeedSize])
	return KeyPair{Public: priv.Public().(ed25519.PublicKey), private: priv}
}

// Sign signs msg with the private key.
func (k KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// Verify reports whether sig is a valid signature of msg under pub.
func Verify(pub ed25519.PublicKey, msg, sig []byte) error {
	if len(pub) != PublicKeySize {
		return ErrBadKeyLength
	}
	if len(sig) != SignatureSize || !ed25519.Verify(pub, msg, sig) {
		return ErrBadSignature
	}
	return nil
}

// PublicKeyHash returns the content address of a public key; it doubles as a
// compact account identifier.
func PublicKeyHash(pub ed25519.PublicKey) Hash {
	return Sum256(pub)
}
