package blockcrypto

import "encoding/binary"

// RNG is a small, fast, deterministic pseudo-random number generator
// (SplitMix64) used for all randomized simulation decisions. It exists so
// that simulation code never reaches for math/rand global state: every
// component owns a seeded RNG and runs are exactly reproducible.
//
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent generator from the current one, labelled by
// name, without disturbing the parent's stream. Forking by label keeps
// subsystem streams stable even when unrelated code adds or removes draws.
func (r *RNG) Fork(name string) *RNG {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], r.state)
	h := SumConcat(buf[:], []byte(name))
	return &RNG{state: h.Uint64()}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand semantics; callers validate n at configuration time.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("blockcrypto: RNG.Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, via the polar Box-Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		// math.Sqrt(-2*math.Log(s)/s) without importing math would be
		// silly; use the stdlib.
		return u * boxMullerScale(s)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
