// Package blockcrypto provides the cryptographic primitives used throughout
// the ICIStrategy implementation: SHA-256 content addressing and Ed25519
// signatures with deterministic key derivation for reproducible simulations.
//
// Everything in this package is a thin, allocation-conscious wrapper around
// the Go standard library; no third-party cryptography is used.
package blockcrypto

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// HashSize is the size in bytes of a Hash.
const HashSize = sha256.Size

// Hash is a SHA-256 digest used as a content address for transactions,
// blocks, and chunks. The zero value is the "null hash" and is never the
// digest of real content in practice.
type Hash [HashSize]byte

// ZeroHash is the all-zero hash, used as the previous-block pointer of a
// genesis block.
var ZeroHash Hash

// Sum256 hashes data with SHA-256.
func Sum256(data []byte) Hash {
	return sha256.Sum256(data)
}

// SumConcat hashes the concatenation of the given byte slices without
// materializing the concatenation.
func SumConcat(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// HashPair hashes the concatenation of two hashes. It is the interior-node
// combiner for Merkle trees.
func HashPair(a, b Hash) Hash {
	h := sha256.New()
	h.Write(a[:])
	h.Write(b[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// IsZero reports whether h is the all-zero hash.
func (h Hash) IsZero() bool {
	return h == ZeroHash
}

// String returns the full lowercase hex encoding of the hash.
func (h Hash) String() string {
	return hex.EncodeToString(h[:])
}

// Short returns the first 8 hex characters, for logs and tables.
func (h Hash) Short() string {
	return hex.EncodeToString(h[:4])
}

// Uint64 folds the first 8 bytes of the hash into a uint64. It is used for
// rendezvous hashing and deterministic pseudo-random placement decisions.
func (h Hash) Uint64() uint64 {
	return binary.BigEndian.Uint64(h[:8])
}

// ParseHash decodes a 64-character hex string into a Hash.
func ParseHash(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, err
	}
	if len(b) != HashSize {
		return h, errInvalidHashLength(len(b))
	}
	copy(h[:], b)
	return h, nil
}
