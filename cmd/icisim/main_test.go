package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func TestRunSmallSimulation(t *testing.T) {
	if err := run([]string{"-nodes", "24", "-clusters", "2", "-blocks", "2", "-tx", "24", "-verbose"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nodes", "0"}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// Golden-shape check for the obs flag plumbing: -metrics must write a JSON
// object whose keys all carry the namespaced metric naming convention, and
// the simulation must have populated the protocol counters.
func TestObsMetricsFlagGoldenShape(t *testing.T) {
	file := filepath.Join(t.TempDir(), "metrics.json")
	if err := run([]string{"-nodes", "24", "-clusters", "2", "-blocks", "2", "-tx", "24",
		"-trace", "summary", "-metrics", file}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]float64
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("-metrics dump is not valid JSON: %v\n%s", err, data)
	}
	if len(snap) == 0 {
		t.Fatal("simulation recorded no counters")
	}
	nameRE := regexp.MustCompile(`^(ici|consensus|simnet|netx)\.[a-z0-9_.]+$`)
	for name := range snap {
		if !nameRE.MatchString(name) {
			t.Errorf("metric %q violates the naming convention", name)
		}
	}
	if snap["ici.distribute.proposals"] == 0 {
		t.Errorf("protocol counters not wired into the obs registry: %v", snap)
	}
}

func TestObsRejectsBadTraceMode(t *testing.T) {
	if err := run([]string{"-nodes", "24", "-clusters", "2", "-trace", "verbose"}); err == nil {
		t.Fatal("bad -trace mode accepted")
	}
}
