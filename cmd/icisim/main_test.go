package main

import "testing"

func TestRunSmallSimulation(t *testing.T) {
	if err := run([]string{"-nodes", "24", "-clusters", "2", "-blocks", "2", "-tx", "24", "-verbose"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-nodes", "0"}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
