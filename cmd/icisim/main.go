// Command icisim runs one full ICIStrategy simulation — clustering, block
// production, collaborative storage and verification — and prints a
// storage, traffic, and latency summary. It is the quickest way to see the
// whole protocol operate end to end.
//
// Usage:
//
//	icisim [-nodes 128] [-clusters 8] [-replication 1] [-blocks 10]
//	       [-tx 256] [-payload 40] [-seed 42] [-verbose]
//	       [-trace summary|tree] [-metrics FILE|-] [-pprof ADDR]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"icistrategy/internal/core"
	"icistrategy/internal/experiments"
	"icistrategy/internal/metrics"
	"icistrategy/internal/obs"
	"icistrategy/internal/simnet"
	"icistrategy/internal/trace"
	"icistrategy/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icisim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("icisim", flag.ContinueOnError)
	nodes := fs.Int("nodes", 128, "network size")
	clusters := fs.Int("clusters", 8, "number of clusters")
	replication := fs.Int("replication", 1, "intra-cluster replication factor")
	blocks := fs.Int("blocks", 10, "blocks to produce")
	txPerBlock := fs.Int("tx", 256, "transactions per block")
	payload := fs.Int("payload", 40, "payload bytes per transaction")
	seed := fs.Uint64("seed", 42, "simulation seed")
	verbose := fs.Bool("verbose", false, "print per-block progress")
	obsf := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := obsf.Setup(); err != nil {
		return err
	}

	sys, err := core.NewSystem(core.Config{
		Nodes:       *nodes,
		Clusters:    *clusters,
		Replication: *replication,
		Seed:        *seed,
		Tracer:      obsf.Tracer(),
		Registry:    obsf.Registry(),
	})
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(workload.Config{
		Accounts:     256,
		PayloadBytes: *payload,
		Seed:         *seed,
	})
	if err != nil {
		return err
	}

	fmt.Printf("ICIStrategy simulation: %d nodes, %d clusters, r=%d, seed %d\n\n",
		*nodes, *clusters, *replication, *seed)

	wall := time.Now()
	var totalBody int64
	for b := 0; b < *blocks; b++ {
		blk, err := sys.ProduceBlock(gen.NextTxs(*txPerBlock))
		if err != nil {
			return err
		}
		totalBody += int64(blk.BodySize())
		sys.Network().RunUntilIdle()
		committed := sys.CommitCount(blk.Hash())
		if *verbose {
			fmt.Printf("block %3d  %s  body %s  committed by %d/%d nodes\n",
				blk.Header.Height, blk.Hash().Short(),
				metrics.HumanBytes(float64(blk.BodySize())), committed, *nodes)
		}
		if committed < *nodes {
			return fmt.Errorf("block %d committed by only %d/%d nodes", b, committed, *nodes)
		}
		for c := 0; c < sys.NumClusters(); c++ {
			if err := sys.ClusterHoldsBlock(c, blk.Hash()); err != nil {
				return fmt.Errorf("integrity violated: %w", err)
			}
		}
	}

	// Storage summary.
	var storageHist metrics.Histogram
	for i := 0; i < *nodes; i++ {
		st, err := sys.NodeStorage(simnet.NodeID(i))
		if err != nil {
			return err
		}
		storageHist.Observe(float64(st.TotalBytes()))
	}
	traffic := sys.Network().TotalTraffic()

	tbl := metrics.NewTable("simulation summary", "metric", "value")
	tbl.AddRow("blocks committed", *blocks)
	tbl.AddRow("total body data", metrics.HumanBytes(float64(totalBody)))
	tbl.AddRow("full-replication node would store", metrics.HumanBytes(float64(totalBody)))
	tbl.AddRow("mean per-node storage", metrics.HumanBytes(storageHist.Mean()))
	tbl.AddRow("max per-node storage", metrics.HumanBytes(storageHist.Max()))
	tbl.AddRow("storage saving vs full replication",
		fmt.Sprintf("%.1fx", float64(totalBody)/storageHist.Mean()))
	tbl.AddRow("network bytes sent", metrics.HumanBytes(float64(traffic.BytesSent)))
	tbl.AddRow("network messages", traffic.MsgsSent)
	tbl.AddRow("virtual time", sys.Network().Now().Round(time.Millisecond))
	tbl.AddRow("wall time", time.Since(wall).Round(time.Millisecond))
	fmt.Println()
	fmt.Println(tbl.String())

	// Per-kind traffic breakdown.
	kinds := sys.Network().Kinds()
	kt := metrics.NewTable("traffic by message kind", "kind", "messages", "bytes")
	for _, k := range kinds {
		ks := sys.Network().KindTraffic(k)
		kt.AddRow(k, ks.Messages, metrics.HumanBytes(float64(ks.Bytes)))
	}
	fmt.Println(kt.String())

	return obsf.Finish(os.Stdout, func(events []trace.Event) string {
		return experiments.TraceSummaryTable("per-phase trace breakdown", events).String()
	})
}
