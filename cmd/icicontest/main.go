// Command icicontest runs declarative .cont integration scenarios against
// real icinet -serve clusters (see internal/contest for the grammar and
// scenarios/ for the shipped suite):
//
//	icicontest -scenario scenarios/bootstrap.cont
//	icicontest -v scenarios/bootstrap.cont scenarios/crash-restart.cont
//
// Each scenario launches its own cluster of icinet processes, executes the
// staged actions, and tears every process down before the next scenario
// starts. Exit status: 0 all scenarios passed, 1 a scenario failed,
// 2 usage or setup error.
//
// Without -icinet the binary is built on the fly (go build ./cmd/icinet
// from the enclosing module), so the tool works from a plain checkout.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"time"

	"icistrategy/internal/contest"
)

// errUsage marks setup/usage failures so main can exit 2 instead of 1.
var errUsage = errors.New("usage error")

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, errUsage):
		fmt.Fprintln(os.Stderr, "icicontest:", err)
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "icicontest:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("icicontest", flag.ContinueOnError)
	scenarioFlag := fs.String("scenario", "", "scenario file to run (may also be given as positional arguments)")
	icinet := fs.String("icinet", "", "path to an icinet binary; empty: build it from the enclosing module")
	workdir := fs.String("workdir", "", "scratch directory for node state (default: a temp dir, removed afterwards)")
	timeout := fs.Duration("timeout", 5*time.Minute, "per-scenario budget")
	verbose := fs.Bool("v", false, "mirror each node's stderr into the narration")
	if err := fs.Parse(args); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	var files []string
	if *scenarioFlag != "" {
		files = append(files, *scenarioFlag)
	}
	files = append(files, fs.Args()...)
	if len(files) == 0 {
		return fmt.Errorf("%w: no scenario files given (try -scenario scenarios/bootstrap.cont)", errUsage)
	}

	bin := *icinet
	if bin == "" {
		built, cleanup, err := buildIcinet()
		if err != nil {
			return fmt.Errorf("%w: %v", errUsage, err)
		}
		defer cleanup()
		bin = built
	}

	failed := 0
	for _, f := range files {
		sc, err := contest.ParseScenarioFile(f)
		if err != nil {
			return fmt.Errorf("%w: %v", errUsage, err)
		}
		r := &contest.Runner{
			IcinetPath: bin,
			WorkDir:    *workdir,
			Out:        out,
			Verbose:    *verbose,
			Timeout:    *timeout,
		}
		if err := r.Run(sc); err != nil {
			failed++
			fmt.Fprintf(out, "FAIL %s: %v\n", f, err)
			continue
		}
		fmt.Fprintf(out, "PASS %s\n", f)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(files))
	}
	return nil
}

// buildIcinet compiles cmd/icinet into a temp dir, locating the module
// root by walking up from the working directory.
func buildIcinet() (string, func(), error) {
	root, err := moduleRoot()
	if err != nil {
		return "", nil, fmt.Errorf("%v (pass -icinet PATH to use a prebuilt binary)", err)
	}
	dir, err := os.MkdirTemp("", "icicontest-bin-")
	if err != nil {
		return "", nil, err
	}
	cleanup := func() { os.RemoveAll(dir) }
	bin := filepath.Join(dir, "icinet")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/icinet")
	cmd.Dir = root
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		cleanup()
		return "", nil, fmt.Errorf("build icinet: %v", err)
	}
	return bin, cleanup, nil
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("no go.mod found above the working directory")
		}
		dir = parent
	}
}
