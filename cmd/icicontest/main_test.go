package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRequiresScenarios(t *testing.T) {
	var sb strings.Builder
	err := run(nil, &sb)
	if !errors.Is(err, errUsage) {
		t.Fatalf("no-scenario run: %v", err)
	}
}

func TestRunRejectsUnparseableScenario(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.cont")
	if err := os.WriteFile(bad, []byte("scenario x\nbogus directive\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	// -icinet short-circuits the on-the-fly build; parsing fails first.
	err := run([]string{"-icinet", "/nonexistent", "-scenario", bad}, &sb)
	if !errors.Is(err, errUsage) || !strings.Contains(err.Error(), "unknown directive") {
		t.Fatalf("bad scenario: %v", err)
	}
}

func TestModuleRootFindsGoMod(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("moduleRoot %s has no go.mod: %v", root, err)
	}
}

// TestRunScenarioEndToEnd drives the CLI path itself (build-free, using a
// prebuilt fake) over a minimal scenario; the full binary suite lives in
// internal/contest's integration tests.
func TestRunScenarioEndToEnd(t *testing.T) {
	fake := filepath.Join(t.TempDir(), "fake-icinet")
	script := `#!/bin/sh
addr=""
while [ $# -gt 0 ]; do
  case "$1" in -listen) addr="$2"; shift ;; esac
  shift
done
trap 'exit 0' TERM INT
echo "ICINET READY addr=$addr id=0"
echo "event=serve.ready" >&2
while :; do sleep 0.1; done
`
	if err := os.WriteFile(fake, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	scen := filepath.Join(t.TempDir(), "mini.cont")
	src := `scenario mini
node n0
stage s
    start n0
    wait-log n0 event=serve.ready timeout=5s
    stop n0
`
	if err := os.WriteFile(scen, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := run([]string{"-icinet", fake, "-scenario", scen}, &sb); err != nil {
		t.Fatalf("mini scenario failed: %v\n%s", err, sb.String())
	}
	if !strings.Contains(sb.String(), "PASS "+scen) {
		t.Fatalf("missing PASS line:\n%s", sb.String())
	}
}
