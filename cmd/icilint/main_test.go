package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module under t.TempDir and returns
// its root. Keys are slash-relative paths.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// runIn invokes run with -C dir and restores the working directory after,
// since -C chdirs the whole process.
func runIn(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	orig, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(orig); err != nil {
			t.Fatal(err)
		}
	}()
	var out, errBuf bytes.Buffer
	code = run(append([]string{"-C", dir}, args...), &out, &errBuf)
	return code, out.String(), errBuf.String()
}

const violatingClock = `package core

import "time"

func Now() time.Time {
	return time.Now()
}
`

func TestRunReportsFindings(t *testing.T) {
	root := writeModule(t, map[string]string{"core/clock.go": violatingClock})
	code, stdout, stderr := runIn(t, root, "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "core/clock.go:6:") || !strings.Contains(stdout, "[determinism]") {
		t.Fatalf("finding not reported with relative path and analyzer tag:\n%s", stdout)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Fatalf("summary missing from stderr: %s", stderr)
	}
}

func TestRunJSONOutput(t *testing.T) {
	root := writeModule(t, map[string]string{"core/clock.go": violatingClock})
	code, stdout, _ := runIn(t, root, "-json", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	var diags []struct {
		Analyzer string `json:"analyzer"`
		File     string `json:"file"`
		Line     int    `json:"line"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout)
	}
	if len(diags) != 1 || diags[0].Analyzer != "determinism" || diags[0].File != "core/clock.go" || diags[0].Line != 6 {
		t.Fatalf("unexpected diagnostics: %+v", diags)
	}
}

func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	root := writeModule(t, map[string]string{"util/util.go": "package util\n\nfunc Id(x int) int { return x }\n"})
	code, stdout, stderr := runIn(t, root, "-json", "./...")
	if code != 0 {
		t.Fatalf("exit = %d, want 0; stderr: %s", code, stderr)
	}
	if strings.TrimSpace(stdout) != "[]" {
		t.Fatalf("clean -json run must emit an empty array, got: %q", stdout)
	}
}

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "chunkalias", "atomicmix", "metricname", "spanbalance"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list omits %s:\n%s", name, out.String())
		}
	}
}

func TestRunAllowAnnotationSuppresses(t *testing.T) {
	annotated := strings.Replace(violatingClock,
		"return time.Now()",
		"return time.Now() //icilint:allow determinism(boundary clock for callers outside the simulation)", 1)
	root := writeModule(t, map[string]string{"core/clock.go": annotated})
	code, stdout, stderr := runIn(t, root, "./...")
	if code != 0 {
		t.Fatalf("annotated violation still reported: exit=%d\n%s%s", code, stdout, stderr)
	}
}

func TestRunSuppressionFileDefault(t *testing.T) {
	root := writeModule(t, map[string]string{
		"core/clock.go":  violatingClock,
		".icilint-allow": "core/clock.go determinism # vendored fixture\n",
	})
	code, stdout, stderr := runIn(t, root, "./...")
	if code != 0 {
		t.Fatalf(".icilint-allow entry not honored: exit=%d\n%s%s", code, stdout, stderr)
	}
}

func TestRunSuppressionFileUnknownAnalyzer(t *testing.T) {
	root := writeModule(t, map[string]string{
		"core/clock.go":  violatingClock,
		".icilint-allow": "core/clock.go determinsm\n",
	})
	code, _, stderr := runIn(t, root, "./...")
	if code != 2 {
		t.Fatalf("typo'd suppression must be a load failure: exit=%d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, `"determinsm"`) {
		t.Fatalf("stderr should name the unknown analyzer: %s", stderr)
	}
}

func TestRunExplicitAllowFlag(t *testing.T) {
	root := writeModule(t, map[string]string{
		"core/clock.go": violatingClock,
		"baseline.txt":  "core/* *\n",
	})
	code, stdout, stderr := runIn(t, root, "-allow", "baseline.txt", "./...")
	if code != 0 {
		t.Fatalf("-allow file not honored: exit=%d\n%s%s", code, stdout, stderr)
	}
}

const aliasingPut = `package core

type Store struct{ buf []byte }

func (s *Store) Put(data []byte) {
	s.buf = data
}
`

func TestRunFixAppliesAndIsIdempotent(t *testing.T) {
	root := writeModule(t, map[string]string{"core/store.go": aliasingPut})
	code, _, stderr := runIn(t, root, "-fix", "./...")
	if code != 1 {
		t.Fatalf("first -fix run: exit = %d, want 1 (finding present); stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "-fix applied 1 edit(s) in 1 file(s)") {
		t.Fatalf("fix summary missing: %s", stderr)
	}
	fixed, err := os.ReadFile(filepath.Join(root, "core", "store.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "s.buf = append([]byte(nil), data...)") {
		t.Fatalf("fix not applied to source:\n%s", fixed)
	}
	// Idempotence: the fixed tree is clean, so a second -fix run applies
	// nothing and exits 0.
	code, stdout, stderr := runIn(t, root, "-fix", "./...")
	if code != 0 {
		t.Fatalf("second -fix run: exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "-fix applied 0 edit(s) in 0 file(s)") {
		t.Fatalf("second run should apply nothing: %s", stderr)
	}
}

func TestRunDiffPrintsWithoutWriting(t *testing.T) {
	root := writeModule(t, map[string]string{"core/store.go": aliasingPut})
	code, stdout, stderr := runIn(t, root, "-diff", "./...")
	if code != 1 {
		t.Fatalf("exit = %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "--- core/store.go") ||
		!strings.Contains(stdout, "+\ts.buf = append([]byte(nil), data...)") {
		t.Fatalf("diff output missing expected hunk:\n%s", stdout)
	}
	onDisk, err := os.ReadFile(filepath.Join(root, "core", "store.go"))
	if err != nil {
		t.Fatal(err)
	}
	if string(onDisk) != aliasingPut {
		t.Fatalf("-diff must not modify files:\n%s", onDisk)
	}
}

const staleAnnotated = `package util

func Id(x int) int { return x } //icilint:allow determinism(stale: there is no clock here)
`

func TestRunStaleAllowAnnotation(t *testing.T) {
	root := writeModule(t, map[string]string{"util/util.go": staleAnnotated})
	// Default: warning on stderr, exit stays 0.
	code, _, stderr := runIn(t, root, "./...")
	if code != 0 {
		t.Fatalf("default run: exit = %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "stale icilint:allow determinism") {
		t.Fatalf("stale-annotation warning missing: %s", stderr)
	}
	// -strict-allow: the stale annotation is a finding.
	code, stdout, _ := runIn(t, root, "-strict-allow", "./...")
	if code != 1 {
		t.Fatalf("-strict-allow run: exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, "[icilint]") || !strings.Contains(stdout, "stale icilint:allow determinism") {
		t.Fatalf("stale annotation not reported as finding:\n%s", stdout)
	}
	// -strict-allow -fix deletes the annotation; the tree is then clean.
	if code, _, stderr := runIn(t, root, "-strict-allow", "-fix", "./..."); code != 1 {
		t.Fatalf("fix pass: exit = %d, want 1; stderr: %s", code, stderr)
	}
	fixed, err := os.ReadFile(filepath.Join(root, "util", "util.go"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(fixed), "icilint:allow") {
		t.Fatalf("stale annotation not deleted:\n%s", fixed)
	}
	if code, stdout, stderr := runIn(t, root, "-strict-allow", "./..."); code != 0 {
		t.Fatalf("after deletion: exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

func TestRunStaleSuppressionFileEntry(t *testing.T) {
	root := writeModule(t, map[string]string{
		"util/util.go":   "package util\n\nfunc Id(x int) int { return x }\n",
		".icilint-allow": "util/util.go determinism # nothing fires here anymore\n",
	})
	code, _, stderr := runIn(t, root, "./...")
	if code != 0 {
		t.Fatalf("default run: exit = %d, want 0; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "stale suppression entry") {
		t.Fatalf("stale-entry warning missing: %s", stderr)
	}
	code, stdout, _ := runIn(t, root, "-strict-allow", "./...")
	if code != 1 {
		t.Fatalf("-strict-allow run: exit = %d, want 1", code)
	}
	if !strings.Contains(stdout, ".icilint-allow:1:") || !strings.Contains(stdout, "stale suppression-file entry") {
		t.Fatalf("stale entry not reported as finding:\n%s", stdout)
	}
}

func TestRunOutputDeterministicallySorted(t *testing.T) {
	root := writeModule(t, map[string]string{
		"core/clock.go":    violatingClock,
		"cluster/clock.go": strings.Replace(violatingClock, "package core", "package cluster", 1),
	})
	var first string
	for i := 0; i < 3; i++ {
		code, stdout, _ := runIn(t, root, "./...")
		if code != 1 {
			t.Fatalf("exit = %d, want 1", code)
		}
		if i == 0 {
			first = stdout
			continue
		}
		if stdout != first {
			t.Fatalf("output differs between runs:\n--- run 0\n%s--- run %d\n%s", first, i, stdout)
		}
	}
	lines := strings.Split(strings.TrimSpace(first), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "cluster/clock.go:") || !strings.HasPrefix(lines[1], "core/clock.go:") {
		t.Fatalf("findings not sorted by file:\n%s", first)
	}
}
