// Command icilint is the repo's static-analysis gate: it runs the
// internal/analysis/analyzers suite — ten checkers, each encoding a bug
// family a previous PR actually shipped — over the module and exits
// non-zero on any finding, so CI blocks regressions of the determinism,
// chunk-aliasing, atomic-access, metric-naming, span-balance, pool-return,
// goroutine-join, deadline, epoch-resolution, and cross-package aliasing
// invariants at review time instead of at 3am.
//
// Usage:
//
//	icilint [flags] [packages]
//
//	icilint ./...                    # whole module (the CI gate)
//	icilint ./internal/core/...      # one subtree
//	icilint -json ./...              # machine-readable findings for CI annotation
//	icilint -list                    # the suite and what each analyzer polices
//	icilint -allow FILE ./...        # extra suppression file (default .icilint-allow)
//	icilint -fix ./...               # apply suggested fixes in place
//	icilint -diff ./...              # print suggested fixes as a unified diff
//	icilint -strict-allow ./...      # stale suppressions become findings
//
// Findings print as file:line:col: [analyzer] message. Suppression is via
// source annotations — //icilint:allow analyzer(reason) — or the optional
// suppression file; both grammars are documented in DESIGN.md. A
// suppression that matches no diagnostic is itself reported: as a warning
// by default, and as an "icilint" finding under -strict-allow (where -fix
// also deletes stale single-clause annotations). Exit codes: 0 clean,
// 1 findings, 2 usage/load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"icistrategy/internal/analysis"
	"icistrategy/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main, factored for tests. Returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("icilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (machine-readable diagnostics for CI)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	allowFile := fs.String("allow", "", "suppression file (default: .icilint-allow at the module root, if present)")
	fix := fs.Bool("fix", false, "apply suggested fixes to the source files in place")
	diff := fs.Bool("diff", false, "print suggested fixes as a unified diff without writing (implies not -fix)")
	strictAllow := fs.Bool("strict-allow", false, "report stale suppressions (allow annotations and file entries matching nothing) as findings")
	dir := fs.String("C", "", "change to this directory before running")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, doc)
		}
		return 0
	}
	if *dir != "" {
		if err := os.Chdir(*dir); err != nil {
			fmt.Fprintln(stderr, "icilint:", err)
			return 2
		}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "icilint:", err)
		return 2
	}
	loader, err := analysis.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "icilint:", err)
		return 2
	}
	known := map[string]bool{}
	for _, a := range suite {
		known[a.Name] = true
	}
	sup, err := loadSuppressions(*allowFile, root, known)
	if err != nil {
		fmt.Fprintln(stderr, "icilint:", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "icilint:", err)
		return 2
	}
	res, err := analysis.RunPackages(loader, pkgs, suite, nil)
	if err != nil {
		fmt.Fprintln(stderr, "icilint:", err)
		return 2
	}
	all := sup.Filter(res.Diagnostics)

	// Sources for fix application, keyed by the loader's full paths (the
	// same paths diagnostics' edits carry before relativization).
	sources := map[string][]byte{}
	for _, pkg := range pkgs {
		for path, src := range pkg.Sources {
			sources[path] = src
		}
	}

	// Stale suppressions: annotations that matched nothing and allow-file
	// entries whose use counter stayed zero. Warnings by default; findings
	// under -strict-allow, where annotation deletions also become fixes.
	for _, rec := range res.Allows {
		if rec.Matched > 0 {
			continue
		}
		if *strictAllow {
			all = append(all, analysis.StaleAllowDiagnostic(rec.Allow, sources[rec.File]))
		} else {
			fmt.Fprintf(stderr, "icilint: warning: %s:%d: stale icilint:allow %s(%s) matches no diagnostic (run -strict-allow to enforce)\n",
				displayPath(rec.File, root), rec.FromLine, rec.Analyzer, rec.Reason)
		}
	}
	for _, e := range sup.Stale() {
		if *strictAllow {
			all = append(all, analysis.NewDiagnostic("icilint",
				token.Position{Filename: e.File, Line: e.Line, Column: 1},
				fmt.Sprintf("stale suppression-file entry %q %s: no diagnostic matched; delete the line", e.Pattern, e.Analyzer)))
		} else {
			fmt.Fprintf(stderr, "icilint: warning: %s:%d: stale suppression entry %q %s matches no diagnostic (run -strict-allow to enforce)\n",
				displayPath(e.File, root), e.Line, e.Pattern, e.Analyzer)
		}
	}
	analysis.SortDiagnostics(all)

	if *fix || *diff {
		changed, applied, dropped := analysis.ApplyFixes(all, sources)
		files := make([]string, 0, len(changed))
		for f := range changed {
			files = append(files, f)
		}
		sort.Strings(files)
		if *diff {
			for _, f := range files {
				fmt.Fprint(stdout, analysis.UnifiedDiff(displayPath(f, root), sources[f], changed[f]))
			}
		} else {
			for _, f := range files {
				if err := writeBack(f, changed[f]); err != nil {
					fmt.Fprintln(stderr, "icilint:", err)
					return 2
				}
			}
			fmt.Fprintf(stderr, "icilint: -fix applied %d edit(s) in %d file(s)\n", applied, len(files))
		}
		if dropped > 0 {
			fmt.Fprintf(stderr, "icilint: %d overlapping or out-of-range edit(s) skipped\n", dropped)
		}
	}

	relativize(all, root)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []analysis.Diagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "icilint:", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Column, d.Analyzer, d.Message)
		}
	}
	if len(all) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "icilint: %d finding(s)\n", len(all))
		}
		return 1
	}
	return 0
}

// writeBack rewrites path with data, preserving the file's mode.
func writeBack(path string, data []byte) error {
	mode := os.FileMode(0o644)
	if st, err := os.Stat(path); err == nil {
		mode = st.Mode().Perm()
	}
	return os.WriteFile(path, data, mode)
}

// loadSuppressions reads the explicit -allow file, or the default
// .icilint-allow at the module root when present.
func loadSuppressions(path, root string, known map[string]bool) (*analysis.Suppressions, error) {
	if path == "" {
		path = filepath.Join(root, ".icilint-allow")
		if _, err := os.Stat(path); err != nil {
			return nil, nil // optional default
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return analysis.ParseSuppressions(f, path, known)
}

// displayPath renders a path relative to the module root when possible.
func displayPath(path, root string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// relativize rewrites absolute finding paths relative to the module root,
// so output (and JSON consumed by CI annotators) is machine-independent.
func relativize(diags []analysis.Diagnostic, root string) {
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
			diags[i].Pos.Filename = rel
		}
	}
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
