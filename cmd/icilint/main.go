// Command icilint is the repo's static-analysis gate: it runs the
// internal/analysis/analyzers suite — five checkers, each encoding a bug
// family a previous PR actually shipped — over the module and exits
// non-zero on any finding, so CI blocks regressions of the determinism,
// chunk-aliasing, atomic-access, metric-naming, and span-balance
// invariants at review time instead of at 3am.
//
// Usage:
//
//	icilint [flags] [packages]
//
//	icilint ./...                    # whole module (the CI gate)
//	icilint ./internal/core/...      # one subtree
//	icilint -json ./...              # machine-readable findings for CI annotation
//	icilint -list                    # the suite and what each analyzer polices
//	icilint -allow FILE ./...        # extra suppression file (default .icilint-allow)
//
// Findings print as file:line:col: [analyzer] message. Suppression is via
// source annotations — //icilint:allow analyzer(reason) — or the optional
// suppression file; both grammars are documented in DESIGN.md. Exit codes:
// 0 clean, 1 findings, 2 usage/load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"icistrategy/internal/analysis"
	"icistrategy/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main, factored for tests. Returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("icilint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (machine-readable diagnostics for CI)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	allowFile := fs.String("allow", "", "suppression file (default: .icilint-allow at the module root, if present)")
	dir := fs.String("C", "", "change to this directory before running")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analyzers.All()
	if *list {
		for _, a := range suite {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, doc)
		}
		return 0
	}
	if *dir != "" {
		if err := os.Chdir(*dir); err != nil {
			fmt.Fprintln(stderr, "icilint:", err)
			return 2
		}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "icilint:", err)
		return 2
	}
	loader, err := analysis.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "icilint:", err)
		return 2
	}
	known := map[string]bool{}
	for _, a := range suite {
		known[a.Name] = true
	}
	sup, err := loadSuppressions(*allowFile, root, known)
	if err != nil {
		fmt.Fprintln(stderr, "icilint:", err)
		return 2
	}
	pkgs, err := loader.Load(fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "icilint:", err)
		return 2
	}
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, suite)
		if err != nil {
			fmt.Fprintln(stderr, "icilint:", err)
			return 2
		}
		all = append(all, sup.Filter(diags)...)
	}
	relativize(all, root)
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if all == nil {
			all = []analysis.Diagnostic{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, "icilint:", err)
			return 2
		}
	} else {
		for _, d := range all {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Column, d.Analyzer, d.Message)
		}
	}
	if len(all) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "icilint: %d finding(s)\n", len(all))
		}
		return 1
	}
	return 0
}

// loadSuppressions reads the explicit -allow file, or the default
// .icilint-allow at the module root when present.
func loadSuppressions(path, root string, known map[string]bool) (*analysis.Suppressions, error) {
	if path == "" {
		path = filepath.Join(root, ".icilint-allow")
		if _, err := os.Stat(path); err != nil {
			return nil, nil // optional default
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return analysis.ParseSuppressions(f, path, known)
}

// relativize rewrites absolute finding paths relative to the module root,
// so output (and JSON consumed by CI annotators) is machine-independent.
func relativize(diags []analysis.Diagnostic, root string) {
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
			diags[i].Pos.Filename = rel
		}
	}
}

// findModuleRoot walks up from the working directory to go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
