// Command icistat inspects the static structure of an ICIStrategy
// deployment without producing any blocks: the cluster partition, its
// latency quality, the chunk-ownership balance of the rendezvous placement,
// and the analytic per-node storage projection for a target chain length.
//
// Usage:
//
//	icistat [-nodes 1024] [-clusters 16] [-replication 1]
//	        [-blocks 1000] [-blocksize 1048576] [-seed 42] [-method balanced-kmeans]
package main

import (
	"flag"
	"fmt"
	"os"

	"icistrategy/internal/blockcrypto"
	"icistrategy/internal/cluster"
	"icistrategy/internal/core"
	"icistrategy/internal/metrics"
	"icistrategy/internal/simnet"
	"icistrategy/internal/strategy"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icistat:", err)
		os.Exit(1)
	}
}

func parseMethod(s string) (cluster.Method, error) {
	for _, m := range []cluster.Method{
		cluster.KMeans, cluster.BalancedKMeans, cluster.RandomPartition, cluster.HashPartition,
	} {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown method %q (kmeans, balanced-kmeans, random, hash)", s)
}

func run(args []string) error {
	fs := flag.NewFlagSet("icistat", flag.ContinueOnError)
	nodes := fs.Int("nodes", 1024, "network size")
	clusters := fs.Int("clusters", 16, "number of clusters")
	replication := fs.Int("replication", 1, "replication factor")
	blocks := fs.Int("blocks", 1000, "projected chain length")
	blockSize := fs.Int64("blocksize", 1<<20, "projected block body bytes")
	seed := fs.Uint64("seed", 42, "seed")
	methodName := fs.String("method", "balanced-kmeans", "clustering method")
	if err := fs.Parse(args); err != nil {
		return err
	}
	method, err := parseMethod(*methodName)
	if err != nil {
		return err
	}

	rng := blockcrypto.NewRNG(*seed)
	coords := simnet.RandomCoords(*nodes, 60, rng.Fork("coords"))
	asg, err := cluster.Partition(method, coords, *clusters, rng.Fork("partition"))
	if err != nil {
		return err
	}
	q := cluster.Evaluate(asg, coords)

	pt := metrics.NewTable(
		fmt.Sprintf("partition (%s, n=%d, m=%d)", method, *nodes, *clusters),
		"metric", "value")
	pt.AddRow("mean intra-cluster distance (ms)", q.MeanIntraDistance)
	pt.AddRow("max intra-cluster distance (ms)", q.MaxIntraDistance)
	pt.AddRow("silhouette", q.Silhouette)
	pt.AddRow("size imbalance", q.SizeImbalance)
	sizes := metrics.Histogram{}
	for c := 0; c < asg.NumClusters(); c++ {
		sizes.Observe(float64(asg.Size(c)))
	}
	pt.AddRow("cluster size min/mean/max",
		fmt.Sprintf("%.0f / %.1f / %.0f", sizes.Min(), sizes.Mean(), sizes.Max()))
	fmt.Println(pt.String())

	// Storage projection.
	acc, err := core.NewAccountant(asg, *replication)
	if err != nil {
		return err
	}
	for b := 0; b < *blocks; b++ {
		acc.AddBlock(*blockSize)
	}
	mean, err := strategy.MeanNodeBytes(acc)
	if err != nil {
		return err
	}
	maxB, err := strategy.MaxNodeBytes(acc)
	if err != nil {
		return err
	}
	total := float64(*blocks) * float64(*blockSize)
	st := metrics.NewTable(
		fmt.Sprintf("storage projection (%d blocks of %s, r=%d)",
			*blocks, metrics.HumanBytes(float64(*blockSize)), *replication),
		"metric", "value")
	st.AddRow("total chain body", metrics.HumanBytes(total))
	st.AddRow("full-replication per node", metrics.HumanBytes(total))
	st.AddRow("ici mean per node", metrics.HumanBytes(mean))
	st.AddRow("ici max per node", metrics.HumanBytes(float64(maxB)))
	st.AddRow("saving vs full replication", fmt.Sprintf("%.1fx", total/mean))
	fmt.Println(st.String())

	// Ownership balance of the rendezvous placement over the first cluster.
	members := make([]simnet.NodeID, 0, asg.Size(0))
	for _, m := range asg.Members[0] {
		members = append(members, simnet.NodeID(m))
	}
	counts := make(map[simnet.NodeID]int, len(members))
	probes := 500
	for b := 0; b < probes; b++ {
		for idx := 0; idx < len(members); idx++ {
			owners, err := core.Owners(rng.Uint64(), members, idx, *replication)
			if err != nil {
				return err
			}
			for _, o := range owners {
				counts[o]++
			}
		}
	}
	var loads metrics.Histogram
	for _, c := range counts {
		loads.Observe(float64(c))
	}
	ot := metrics.NewTable(
		fmt.Sprintf("chunk ownership balance (cluster 0, %d members, %d probe blocks)", len(members), probes),
		"metric", "value")
	ot.AddRow("min load", loads.Min())
	ot.AddRow("mean load", loads.Mean())
	ot.AddRow("max load", loads.Max())
	ot.AddRow("stddev / mean", loads.Stddev()/loads.Mean())
	fmt.Println(ot.String())
	return nil
}
