package main

import "testing"

func TestRunDefaultsSmall(t *testing.T) {
	if err := run([]string{"-nodes", "64", "-clusters", "4", "-blocks", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEveryMethod(t *testing.T) {
	for _, m := range []string{"kmeans", "balanced-kmeans", "random", "hash"} {
		if err := run([]string{"-nodes", "32", "-clusters", "4", "-blocks", "5", "-method", m}); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
}

func TestRunRejectsUnknownMethod(t *testing.T) {
	if err := run([]string{"-method", "sorting-hat"}); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestRunRejectsBadShape(t *testing.T) {
	if err := run([]string{"-nodes", "4", "-clusters", "8"}); err == nil {
		t.Fatal("clusters > nodes accepted")
	}
}
