package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-run", "E3", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV written")
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	if err := run([]string{"-quick", "-run", "E7,E8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-quick", "-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSeedOverride(t *testing.T) {
	if err := run([]string{"-quick", "-run", "E8", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}
