package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-run", "E3", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV written")
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	if err := run([]string{"-quick", "-run", "E7,E8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-quick", "-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSeedOverride(t *testing.T) {
	if err := run([]string{"-quick", "-run", "E8", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestErasureBenchWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-erasurebench", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report erasureBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(report.Results) == 0 {
		t.Fatal("report holds no results")
	}
	head := report.Results[0]
	if head.K != 16 || head.M != 4 {
		t.Fatalf("headline shape = RS(%d,%d), want RS(16,4)", head.K, head.M)
	}
	if head.EncodeMBps <= 0 || head.EncodeScalarMBps <= 0 || head.ReconstructMBps <= 0 {
		t.Fatalf("non-positive throughput in %+v", head)
	}
	if head.EncodeSpeedup <= 0 {
		t.Fatalf("speedup not computed: %+v", head)
	}
}

// TestErasureBenchSpeedupGate exercises both sides of -minspeedup: an
// impossible threshold must fail, a trivial one must pass.
func TestErasureBenchSpeedupGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-erasurebench", path, "-minspeedup", "1e9"}); err == nil {
		t.Fatal("impossible speedup gate passed")
	}
	if err := run([]string{"-quick", "-erasurebench", path, "-minspeedup", "0.0001"}); err != nil {
		t.Fatalf("trivial speedup gate failed: %v", err)
	}
}

// TestParallelMatchesSequentialCSV runs the same experiment slice through
// a 1-worker and a wide pool and requires byte-identical CSV output — the
// determinism contract of the parallel runner, end to end through the CLI.
func TestParallelMatchesSequentialCSV(t *testing.T) {
	seqDir, parDir := t.TempDir(), t.TempDir()
	if err := run([]string{"-quick", "-run", "E3,E4,E7", "-parallel", "1", "-csv", seqDir}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-quick", "-run", "E3,E4,E7", "-parallel", "8", "-csv", parDir}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"e3.csv", "e4.csv", "e7.csv"} {
		seq, err := os.ReadFile(filepath.Join(seqDir, name))
		if err != nil {
			t.Fatal(err)
		}
		par, err := os.ReadFile(filepath.Join(parDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(seq) != string(par) {
			t.Fatalf("%s differs between -parallel 1 and -parallel 8", name)
		}
	}
}

func TestSimBenchWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-simbench", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report simBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(report.Results) != 2 {
		t.Fatalf("got %d results, want 2 sweep sizes", len(report.Results))
	}
	for _, r := range report.Results {
		if r.Events <= 0 || r.EventsPerSec <= 0 || r.BaselineEventsPerSec <= 0 || r.Speedup <= 0 {
			t.Fatalf("degenerate measurement: %+v", r)
		}
		if r.AllocsPerEvent > 2 {
			t.Fatalf("n=%d: %.2f allocs/event on the overhauled engine, want <= 2", r.Nodes, r.AllocsPerEvent)
		}
	}
}

// TestSimBenchSpeedupGate exercises both sides of -minspeedup in simbench
// mode: an impossible threshold must fail, a trivial one must pass.
func TestSimBenchSpeedupGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-simbench", path, "-minspeedup", "1e9"}); err == nil {
		t.Fatal("impossible speedup gate passed")
	}
	if err := run([]string{"-quick", "-simbench", path, "-minspeedup", "0.0001"}); err != nil {
		t.Fatalf("trivial speedup gate failed: %v", err)
	}
}

// Golden-shape check for the obs flag plumbing in the benchmark driver.
func TestObsMetricsFlagGoldenShape(t *testing.T) {
	file := filepath.Join(t.TempDir(), "metrics.json")
	if err := run([]string{"-quick", "-run", "E3", "-trace", "summary", "-metrics", file}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]float64
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("-metrics dump is not valid JSON: %v\n%s", err, data)
	}
	nameRE := regexp.MustCompile(`^(ici|consensus|simnet|netx)\.[a-z0-9_.]+$`)
	for name := range snap {
		if !nameRE.MatchString(name) {
			t.Errorf("metric %q violates the naming convention", name)
		}
	}
}

func TestObsRejectsBadTraceMode(t *testing.T) {
	if err := run([]string{"-quick", "-run", "E3", "-trace", "verbose"}); err == nil {
		t.Fatal("bad -trace mode accepted")
	}
}
