package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-run", "E3", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "e3.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV written")
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	if err := run([]string{"-quick", "-run", "E7,E8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-quick", "-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSeedOverride(t *testing.T) {
	if err := run([]string{"-quick", "-run", "E8", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestErasureBenchWritesReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-erasurebench", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report erasureBenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(report.Results) == 0 {
		t.Fatal("report holds no results")
	}
	head := report.Results[0]
	if head.K != 16 || head.M != 4 {
		t.Fatalf("headline shape = RS(%d,%d), want RS(16,4)", head.K, head.M)
	}
	if head.EncodeMBps <= 0 || head.EncodeScalarMBps <= 0 || head.ReconstructMBps <= 0 {
		t.Fatalf("non-positive throughput in %+v", head)
	}
	if head.EncodeSpeedup <= 0 {
		t.Fatalf("speedup not computed: %+v", head)
	}
}

// TestErasureBenchSpeedupGate exercises both sides of -minspeedup: an
// impossible threshold must fail, a trivial one must pass.
func TestErasureBenchSpeedupGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-quick", "-erasurebench", path, "-minspeedup", "1e9"}); err == nil {
		t.Fatal("impossible speedup gate passed")
	}
	if err := run([]string{"-quick", "-erasurebench", path, "-minspeedup", "0.0001"}); err != nil {
		t.Fatalf("trivial speedup gate failed: %v", err)
	}
}
