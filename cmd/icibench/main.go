// Command icibench regenerates every table and figure of the ICIStrategy
// evaluation (experiments E1-E10, see DESIGN.md) and prints them as aligned
// text tables, optionally writing CSV files for plotting.
//
// Usage:
//
//	icibench [-quick] [-run E3,E4] [-csv results/] [-seed 42]
//
// The -erasurebench FILE mode skips the experiment suite and instead writes
// a JSON snapshot of the erasure hot-path throughput (encode MB/s for the
// kernel and scalar paths, the speedup, reconstruction MB/s, allocation
// counts). -minspeedup N makes it exit nonzero when the kernel/scalar
// encode speedup falls below N — the CI regression gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"icistrategy/internal/experiments"
	"icistrategy/internal/obs"
	"icistrategy/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icibench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("icibench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run at reduced scale (seconds instead of minutes)")
	only := fs.String("run", "", "comma-separated experiment IDs to run (default all), e.g. E1,E3")
	csvDir := fs.String("csv", "", "directory to write per-experiment CSV files into")
	seed := fs.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
	erasureBench := fs.String("erasurebench", "", "write an erasure hot-path throughput snapshot to this JSON file and exit")
	minSpeedup := fs.Float64("minspeedup", 0, "with -erasurebench: fail unless kernel/scalar encode speedup reaches this factor")
	obsf := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := obsf.Setup(); err != nil {
		return err
	}

	params := experiments.Defaults()
	if *quick {
		params = experiments.Quick()
	}
	if *seed != 0 {
		params.Seed = *seed
	}
	params.Tracer = obsf.Tracer()
	params.Registry = obsf.Registry()

	if *erasureBench != "" {
		return runErasureBench(*erasureBench, params, *quick, *minSpeedup)
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (valid: E1..E10)", id)
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s (%s): %w", e.ID, e.Name, err)
		}
		fmt.Println(tbl.String())
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
		}
	}
	return obsf.Finish(os.Stdout, func(events []trace.Event) string {
		return experiments.TraceSummaryTable("suite-wide per-phase trace breakdown", events).String()
	})
}

// erasureBenchReport is the schema of BENCH_PR2.json: one measurement per
// code shape at the configured block size, plus enough environment to read
// the numbers in context.
type erasureBenchReport struct {
	GeneratedAt string                     `json:"generated_at"`
	GoVersion   string                     `json:"go_version"`
	GOARCH      string                     `json:"goarch"`
	NumCPU      int                        `json:"num_cpu"`
	Quick       bool                       `json:"quick"`
	Seed        uint64                     `json:"seed"`
	Results     []experiments.CodingResult `json:"results"`
}

// runErasureBench measures the erasure hot path, writes the JSON snapshot,
// prints a summary, and enforces the -minspeedup gate against the headline
// (first) shape.
func runErasureBench(path string, params experiments.Params, quick bool, minSpeedup float64) error {
	window := 500 * time.Millisecond
	if quick {
		window = 50 * time.Millisecond
	}
	report := erasureBenchReport{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Quick:       quick,
		Seed:        params.Seed,
	}
	for _, shape := range experiments.CodingShapes(params) {
		start := time.Now()
		r, err := experiments.RunCodingBench(shape, int(params.BlockBody), params.Seed, window)
		if err != nil {
			return fmt.Errorf("erasure bench RS(%d,%d): %w", shape.K, shape.M, err)
		}
		report.Results = append(report.Results, r)
		fmt.Printf("RS(%d,%d) @ %d B payload: encode %.0f MB/s (scalar %.0f, %.1fx), reconstruct %.0f MB/s (cold %.0f) [%v]\n",
			shape.K, shape.M, r.PayloadBytes, r.EncodeMBps, r.EncodeScalarMBps, r.EncodeSpeedup,
			r.ReconstructMBps, r.ReconstructColdMBps, time.Since(start).Round(time.Millisecond))
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	if minSpeedup > 0 {
		headline := report.Results[0]
		if headline.EncodeSpeedup < minSpeedup {
			return fmt.Errorf("encode speedup %.2fx below required %.2fx (RS(%d,%d), kernel %.0f MB/s vs scalar %.0f MB/s)",
				headline.EncodeSpeedup, minSpeedup, headline.K, headline.M,
				headline.EncodeMBps, headline.EncodeScalarMBps)
		}
		fmt.Printf("speedup gate passed: %.2fx >= %.2fx\n", headline.EncodeSpeedup, minSpeedup)
	}
	return nil
}
