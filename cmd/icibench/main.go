// Command icibench regenerates every table and figure of the ICIStrategy
// evaluation (experiments E1-E10, see DESIGN.md) and prints them as aligned
// text tables, optionally writing CSV files for plotting.
//
// Usage:
//
//	icibench [-quick] [-run E3,E4] [-csv results/] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"icistrategy/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icibench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("icibench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run at reduced scale (seconds instead of minutes)")
	only := fs.String("run", "", "comma-separated experiment IDs to run (default all), e.g. E1,E3")
	csvDir := fs.String("csv", "", "directory to write per-experiment CSV files into")
	seed := fs.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := experiments.Defaults()
	if *quick {
		params = experiments.Quick()
	}
	if *seed != 0 {
		params.Seed = *seed
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (valid: E1..E10)", id)
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	for _, e := range selected {
		start := time.Now()
		tbl, err := e.Run(params)
		if err != nil {
			return fmt.Errorf("%s (%s): %w", e.ID, e.Name, err)
		}
		fmt.Println(tbl.String())
		fmt.Printf("[%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			if err := os.WriteFile(path, []byte(tbl.CSV()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
		}
	}
	return nil
}
