// Command icibench regenerates every table and figure of the ICIStrategy
// evaluation (experiments E1-E10, see DESIGN.md) and prints them as aligned
// text tables, optionally writing CSV files for plotting.
//
// Usage:
//
//	icibench [-quick] [-run E3,E4] [-csv results/] [-seed 42] [-parallel N]
//
// Experiments run as independent cells on a bounded worker pool
// (-parallel N, default GOMAXPROCS); results are collected in registry
// order, so the printed tables and CSV files are byte-identical to a
// sequential (-parallel 1) run. Tracing forces -parallel 1: a single
// suite-wide span recorder is only deterministic single-threaded.
//
// The -erasurebench FILE mode skips the experiment suite and instead writes
// a JSON snapshot of the erasure hot-path throughput (encode MB/s for the
// kernel and scalar paths, the speedup, reconstruction MB/s, allocation
// counts). The -simbench FILE mode does the same for the simulation engine:
// events/sec, allocs/event, and wall time of an E4-style flood+ack workload
// on the overhauled engine versus the frozen pre-overhaul baseline. The
// -gatewaybench FILE mode snapshots the read-path gateway under a Zipfian
// closed-loop load over a real TCP storage cluster, caches on versus off
// (QPS, p50/p99 latency, hit rate, upstream RPC counts). The -churnbench
// FILE mode snapshots availability and chunk movement under membership
// churn (graceful leave/rejoin cycles, flash-crowd join bursts, correlated
// crashes) and fails unless graceful churn keeps 100% availability within
// the per-epoch movement bound.
// -minspeedup N makes any bench mode exit nonzero when its headline
// speedup falls below N — the CI regression gates.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"icistrategy/internal/experiments"
	"icistrategy/internal/gateway"
	"icistrategy/internal/metrics"
	"icistrategy/internal/obs"
	"icistrategy/internal/runner"
	"icistrategy/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icibench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("icibench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "run at reduced scale (seconds instead of minutes)")
	only := fs.String("run", "", "comma-separated experiment IDs to run (default all), e.g. E1,E3")
	csvDir := fs.String("csv", "", "directory to write per-experiment CSV files into")
	seed := fs.Uint64("seed", 0, "override the experiment seed (0 keeps the default)")
	parallel := fs.Int("parallel", 0, "experiment cells to run concurrently (0 = GOMAXPROCS; tracing forces 1)")
	erasureBench := fs.String("erasurebench", "", "write an erasure hot-path throughput snapshot to this JSON file and exit")
	simBench := fs.String("simbench", "", "write a simulation-engine throughput snapshot to this JSON file and exit")
	gatewayBench := fs.String("gatewaybench", "", "write a gateway read-path load snapshot to this JSON file and exit")
	churnBench := fs.String("churnbench", "", "write a churn availability/movement snapshot to this JSON file and exit")
	minSpeedup := fs.Float64("minspeedup", 0, "with -erasurebench/-simbench/-gatewaybench: fail unless the headline speedup reaches this factor")
	obsf := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := obsf.Setup(); err != nil {
		return err
	}

	params := experiments.Defaults()
	if *quick {
		params = experiments.Quick()
	}
	if *seed != 0 {
		params.Seed = *seed
	}
	params.Tracer = obsf.Tracer()
	params.Registry = obsf.Registry()

	if *erasureBench != "" {
		return runErasureBench(*erasureBench, params, *quick, *minSpeedup)
	}
	if *simBench != "" {
		return runSimBench(*simBench, params, *quick, *minSpeedup)
	}
	if *gatewayBench != "" {
		return runGatewayBench(*gatewayBench, params, *quick, *minSpeedup)
	}
	if *churnBench != "" {
		return runChurnBench(*churnBench, params, *quick)
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (valid: E1..E10)", id)
			}
			selected = append(selected, e)
		}
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	workers := *parallel
	if obsf.Tracer() != nil && workers != 1 {
		// One suite-wide span recorder means concurrent cells would
		// interleave span IDs nondeterministically; sequential execution
		// keeps the traced span forest byte-identical run to run.
		if workers > 1 {
			fmt.Fprintln(os.Stderr, "icibench: -trace forces -parallel 1")
		}
		workers = 1
	}

	// Each experiment is one cell: it derives all randomness from the
	// root seed by stable labels, builds its own networks, and shares only
	// the commutative metrics registry — so cells can run on the pool in
	// any interleaving while the collected output stays in registry order.
	cells := make([]runner.Cell, len(selected))
	elapsed := make([]time.Duration, len(selected))
	for i, e := range selected {
		i, e := i, e
		cells[i] = runner.Cell{Key: e.ID, Run: func() (*metrics.Table, error) {
			start := time.Now()
			tbl, err := e.Run(params)
			elapsed[i] = time.Since(start)
			return tbl, err
		}}
	}
	for i, r := range runner.Run(cells, workers) {
		e := selected[i]
		if r.Err != nil {
			return fmt.Errorf("%s (%s): %w", e.ID, e.Name, r.Err)
		}
		fmt.Println(r.Table.String())
		fmt.Printf("[%s completed in %v]\n\n", e.ID, elapsed[i].Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			if err := os.WriteFile(path, []byte(r.Table.CSV()), 0o644); err != nil {
				return fmt.Errorf("write %s: %w", path, err)
			}
		}
	}
	return obsf.Finish(os.Stdout, func(events []trace.Event) string {
		return experiments.TraceSummaryTable("suite-wide per-phase trace breakdown", events).String()
	})
}

// benchEnv is the shared environment header of the JSON bench snapshots
// (BENCH_PR2.json, BENCH_PR5.json).
type benchEnv struct {
	GeneratedAt string `json:"generated_at"`
	GoVersion   string `json:"go_version"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`
	Quick       bool   `json:"quick"`
	Seed        uint64 `json:"seed"`
}

func currentBenchEnv(quick bool, seed uint64) benchEnv {
	return benchEnv{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Quick:       quick,
		Seed:        seed,
	}
}

// writeBenchReport marshals a bench snapshot to path.
func writeBenchReport(path string, report any) error {
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// erasureBenchReport is the schema of BENCH_PR2.json: one measurement per
// code shape at the configured block size, plus enough environment to read
// the numbers in context.
type erasureBenchReport struct {
	benchEnv
	Results []experiments.CodingResult `json:"results"`
}

// runErasureBench measures the erasure hot path, writes the JSON snapshot,
// prints a summary, and enforces the -minspeedup gate against the headline
// (first) shape.
func runErasureBench(path string, params experiments.Params, quick bool, minSpeedup float64) error {
	window := 500 * time.Millisecond
	if quick {
		window = 50 * time.Millisecond
	}
	report := erasureBenchReport{benchEnv: currentBenchEnv(quick, params.Seed)}
	for _, shape := range experiments.CodingShapes(params) {
		start := time.Now()
		r, err := experiments.RunCodingBench(shape, int(params.BlockBody), params.Seed, window)
		if err != nil {
			return fmt.Errorf("erasure bench RS(%d,%d): %w", shape.K, shape.M, err)
		}
		report.Results = append(report.Results, r)
		fmt.Printf("RS(%d,%d) @ %d B payload: encode %.0f MB/s (scalar %.0f, %.1fx), reconstruct %.0f MB/s (cold %.0f) [%v]\n",
			shape.K, shape.M, r.PayloadBytes, r.EncodeMBps, r.EncodeScalarMBps, r.EncodeSpeedup,
			r.ReconstructMBps, r.ReconstructColdMBps, time.Since(start).Round(time.Millisecond))
	}
	if err := writeBenchReport(path, report); err != nil {
		return err
	}
	if minSpeedup > 0 {
		headline := report.Results[0]
		if headline.EncodeSpeedup < minSpeedup {
			return fmt.Errorf("encode speedup %.2fx below required %.2fx (RS(%d,%d), kernel %.0f MB/s vs scalar %.0f MB/s)",
				headline.EncodeSpeedup, minSpeedup, headline.K, headline.M,
				headline.EncodeMBps, headline.EncodeScalarMBps)
		}
		fmt.Printf("speedup gate passed: %.2fx >= %.2fx\n", headline.EncodeSpeedup, minSpeedup)
	}
	return nil
}

// simBenchReport is the schema of BENCH_PR5.json: one measurement per
// network size, overhauled engine versus the frozen pre-overhaul baseline.
type simBenchReport struct {
	benchEnv
	Results []experiments.SimBenchResult `json:"results"`
}

// runSimBench measures the event engine on the E4-style workload at each
// sweep size, writes the JSON snapshot, and enforces the -minspeedup gate
// against the headline (first, paper-scale) size.
func runSimBench(path string, params experiments.Params, quick bool, minSpeedup float64) error {
	report := simBenchReport{benchEnv: currentBenchEnv(quick, params.Seed)}
	for _, n := range experiments.SimBenchSizes(quick) {
		// Cells of the sweep get independent seeds derived from the root
		// by their stable key, so adding a size never perturbs another.
		seed := runner.CellSeed(params.Seed, fmt.Sprintf("simbench/n=%d", n))
		r, err := experiments.RunSimBench(n, experiments.SimBenchRounds(n, quick), seed)
		if err != nil {
			return fmt.Errorf("simbench n=%d: %w", n, err)
		}
		report.Results = append(report.Results, r)
		fmt.Printf("n=%d: %d events in %.2fs — %.0f events/s, %.2f allocs/event (baseline %.0f events/s, %.2f allocs/event) — %.1fx\n",
			r.Nodes, r.Events, r.WallSeconds, r.EventsPerSec, r.AllocsPerEvent,
			r.BaselineEventsPerSec, r.BaselineAllocsPerEvent, r.Speedup)
	}
	if err := writeBenchReport(path, report); err != nil {
		return err
	}
	if minSpeedup > 0 {
		headline := report.Results[0]
		if headline.Speedup < minSpeedup {
			return fmt.Errorf("engine speedup %.2fx below required %.2fx (n=%d: %.0f events/s vs baseline %.0f events/s)",
				headline.Speedup, minSpeedup, headline.Nodes,
				headline.EventsPerSec, headline.BaselineEventsPerSec)
		}
		fmt.Printf("speedup gate passed: %.2fx >= %.2fx\n", headline.Speedup, minSpeedup)
	}
	return nil
}

// gatewayBenchReport is the schema of BENCH_PR7.json: the same Zipfian
// closed-loop workload driven through the gateway with its caches on and
// off, over a real TCP storage cluster.
type gatewayBenchReport struct {
	benchEnv
	CacheOn    gateway.LoadReport `json:"cache_on"`
	CacheOff   gateway.LoadReport `json:"cache_off"`
	QPSSpeedup float64            `json:"qps_speedup"`
}

// runGatewayBench drives the gateway load harness in both cache modes,
// writes the JSON snapshot, and enforces the -minspeedup gate against the
// cache-on / cache-off QPS ratio.
func runGatewayBench(path string, params experiments.Params, quick bool, minSpeedup float64) error {
	report := gatewayBenchReport{benchEnv: currentBenchEnv(quick, params.Seed)}
	for _, mode := range []struct {
		name  string
		bytes int64
		out   *gateway.LoadReport
	}{
		{"cache-on", params.GatewayCacheBytes, &report.CacheOn},
		{"cache-off", 0, &report.CacheOff},
	} {
		r, err := gateway.RunLoad(params.GatewayLoadConfig(mode.bytes))
		if err != nil {
			return fmt.Errorf("gatewaybench %s: %w", mode.name, err)
		}
		*mode.out = r
		fmt.Printf("%s: %d reqs (%d errors) in %.2fs — %.0f QPS, p50 %.2f ms, p99 %.2f ms, hit rate %.2f, %d upstream RPCs (%d refs), %d coalesced\n",
			mode.name, r.Requests, r.Errors, r.Seconds, r.QPS,
			r.P50Millis, r.P99Millis, r.HitRate, r.UpstreamRPCs, r.BatchedRefs, r.Coalesced)
	}
	if report.CacheOff.QPS > 0 {
		report.QPSSpeedup = report.CacheOn.QPS / report.CacheOff.QPS
	}
	if err := writeBenchReport(path, report); err != nil {
		return err
	}
	if minSpeedup > 0 {
		if report.QPSSpeedup < minSpeedup {
			return fmt.Errorf("gateway QPS speedup %.2fx below required %.2fx (cache on %.0f QPS vs off %.0f QPS)",
				report.QPSSpeedup, minSpeedup, report.CacheOn.QPS, report.CacheOff.QPS)
		}
		fmt.Printf("speedup gate passed: %.2fx >= %.2fx\n", report.QPSSpeedup, minSpeedup)
	}
	return nil
}

// churnBenchReport is the schema of BENCH_PR8.json: availability and chunk
// movement per churn variant and rate over the epoch-versioned membership
// machinery.
type churnBenchReport struct {
	benchEnv
	Results []experiments.ChurnResult `json:"results"`
}

// runChurnBench sweeps the churn variants, writes the JSON snapshot, and
// enforces the correctness gate: graceful and flash-crowd churn must keep
// every pre-churn block retrievable (availability 1.0) and per-epoch chunk
// movement within the incremental re-clustering bound. Correlated crashes
// are reported but not gated — losing chunks past the replication factor
// is the expected physics, not a regression.
func runChurnBench(path string, params experiments.Params, quick bool) error {
	report := churnBenchReport{benchEnv: currentBenchEnv(quick, params.Seed)}
	results, err := experiments.RunChurnBench(params)
	if err != nil {
		return err
	}
	report.Results = results
	var failures []string
	for _, r := range results {
		fmt.Printf("%s rate=%d: %d blocks over %d epochs — pre-churn avail %.2f, all %.2f, moved %d chunks (max epoch %d, bound %d), lost %d\n",
			r.Variant, r.Rate, r.Blocks, r.Epochs, r.PreChurnAvail, r.AllAvail,
			r.MovedChunks, r.MaxEpochMoved, r.EpochMoveBound, r.LostChunks)
		if r.Variant == "correlated" {
			continue
		}
		if r.PreChurnAvail < 1 || r.AllAvail < 1 || !r.RetrieveOK {
			failures = append(failures, fmt.Sprintf(
				"%s rate=%d: availability pre=%.2f all=%.2f retrieve_ok=%v (want 1.0/1.0/true)",
				r.Variant, r.Rate, r.PreChurnAvail, r.AllAvail, r.RetrieveOK))
		}
		if r.MaxEpochMoved > r.EpochMoveBound {
			failures = append(failures, fmt.Sprintf(
				"%s rate=%d: max per-epoch movement %d chunks exceeds bound %d",
				r.Variant, r.Rate, r.MaxEpochMoved, r.EpochMoveBound))
		}
	}
	if err := writeBenchReport(path, report); err != nil {
		return err
	}
	if len(failures) > 0 {
		return fmt.Errorf("churn gate failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Println("churn gate passed: graceful and flash-crowd churn kept 100% availability within the movement bound")
	return nil
}
