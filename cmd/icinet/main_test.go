package main

import "testing"

func TestRunTCPDemo(t *testing.T) {
	if err := run([]string{"-members", "5", "-replication", "2", "-blocks", "2", "-tx", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplicationOneSkipsKill(t *testing.T) {
	if err := run([]string{"-members", "4", "-replication", "1", "-blocks", "1", "-tx", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadReplication(t *testing.T) {
	if err := run([]string{"-members", "2", "-replication", "5", "-blocks", "1"}); err == nil {
		t.Fatal("replication > members accepted")
	}
}
