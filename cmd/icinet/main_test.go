package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestRunTCPDemo(t *testing.T) {
	if err := run([]string{"-members", "5", "-replication", "2", "-blocks", "2", "-tx", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunReplicationOneSkipsKill(t *testing.T) {
	if err := run([]string{"-members", "4", "-replication", "1", "-blocks", "1", "-tx", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadReplication(t *testing.T) {
	if err := run([]string{"-members", "2", "-replication", "5", "-blocks", "1"}); err == nil {
		t.Fatal("replication > members accepted")
	}
}

// Regression: a failing server start must name WHICH member failed, not
// surface a bare listen error that could be any of the N servers.
func TestRunReportsFailingMemberOnStartError(t *testing.T) {
	err := run([]string{"-members", "3", "-listen", "257.0.0.1:0", "-blocks", "1"})
	if err == nil {
		t.Fatal("unlistenable address accepted")
	}
	if !strings.Contains(err.Error(), "start member 0 of 3") {
		t.Fatalf("error does not identify the failing member: %v", err)
	}
	if !strings.Contains(err.Error(), "257.0.0.1:0") {
		t.Fatalf("error does not carry the failing address: %v", err)
	}
}

// Regression: when a concrete port is given, the SECOND member's bind
// collides and the error must say so — member index plus address.
func TestRunReportsFailingMemberOnPortCollision(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	err = run([]string{"-members", "2", "-listen", l.Addr().String(), "-blocks", "1"})
	if err == nil {
		t.Fatal("double bind accepted")
	}
	if !strings.Contains(err.Error(), "start member 0 of 2") {
		t.Fatalf("error does not identify the failing member: %v", err)
	}
}

// Golden-shape check for the obs flag plumbing over the TCP demo: the
// -metrics dump must be valid JSON with convention-abiding keys, and a bad
// -trace mode must be rejected before any server starts.
func TestObsMetricsFlagGoldenShape(t *testing.T) {
	file := filepath.Join(t.TempDir(), "metrics.json")
	if err := run([]string{"-members", "3", "-blocks", "1", "-tx", "10",
		"-trace", "summary", "-metrics", file}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]float64
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("-metrics dump is not valid JSON: %v\n%s", err, data)
	}
	nameRE := regexp.MustCompile(`^(ici|consensus|simnet|netx)\.[a-z0-9_.]+$`)
	for name := range snap {
		if !nameRE.MatchString(name) {
			t.Errorf("metric %q violates the naming convention", name)
		}
	}
}

func TestObsRejectsBadTraceMode(t *testing.T) {
	if err := run([]string{"-members", "2", "-trace", "verbose"}); err == nil {
		t.Fatal("bad -trace mode accepted")
	}
}
