package main

import (
	"strings"
	"testing"

	"icistrategy/internal/chain"
	"icistrategy/internal/netx"
	"icistrategy/internal/workload"
)

func TestEventLogFormatsLogfmt(t *testing.T) {
	var b strings.Builder
	l := newEventLog(&b)
	l.Event("serve.ready", "addr", "127.0.0.1:9", "id", 3, "restarted", false)
	l.Event("bootstrap.failed", "err", "dial tcp: connection refused")
	got := b.String()
	want := "event=serve.ready addr=127.0.0.1:9 id=3 restarted=false\n" +
		"event=bootstrap.failed err=\"dial tcp: connection refused\"\n"
	if got != want {
		t.Fatalf("logfmt output:\n%q\nwant:\n%q", got, want)
	}
}

func TestMemberStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := loadMemberState(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	in := memberState{ID: 2, Members: []string{"a:1", "b:2", "c:3"}, Replication: 2}
	if err := saveMemberState(dir, in); err != nil {
		t.Fatal(err)
	}
	out, ok, err := loadMemberState(dir)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if out.ID != in.ID || out.Replication != in.Replication || len(out.Members) != 3 {
		t.Fatalf("round trip mangled state: %+v", out)
	}
}

func TestResolveResyncMode(t *testing.T) {
	cases := []struct {
		mode      string
		restarted bool
		want      string
		wantErr   bool
	}{
		{"auto", false, "none", false},
		{"auto", true, "restart", false},
		{"join", false, "join", false},
		{"restart", false, "restart", false},
		{"none", true, "none", false},
		{"bogus", false, "", true},
	}
	for _, c := range cases {
		got, err := resolveResyncMode(c.mode, c.restarted)
		if c.wantErr != (err != nil) || got != c.want {
			t.Fatalf("resolveResyncMode(%q, %v) = %q, %v", c.mode, c.restarted, got, err)
		}
	}
}

func TestSplitMembers(t *testing.T) {
	if got := splitMembers(" a:1, b:2 ,,c:3 "); len(got) != 3 || got[1] != "b:2" {
		t.Fatalf("splitMembers: %v", got)
	}
	if got := splitMembers("  "); got != nil {
		t.Fatalf("blank list: %v", got)
	}
}

// serveCluster builds a live 3-member cluster with distributed blocks for
// the selfResync tests, returning the member addresses.
func serveCluster(t *testing.T) ([]*netx.Server, []string, []*chain.Block) {
	t.Helper()
	servers := make([]*netx.Server, 3)
	addrs := make([]string, 3)
	for i := range servers {
		s, err := netx.NewServer("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = s.Close() })
		servers[i] = s
		addrs[i] = s.Addr()
	}
	cl, err := netx.NewCluster(addrs, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	gen, err := workload.NewGenerator(workload.Config{Accounts: 30, PayloadBytes: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := workload.NewChainBuilder(gen, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	var blocks []*chain.Block
	for i := 0; i < 2; i++ {
		b, err := cb.NextBlock(15)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.DistributeBlock(b); err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
	}
	return servers, addrs, blocks
}

func TestSelfResyncJoinMode(t *testing.T) {
	_, addrs, _ := serveCluster(t)
	joiner, err := netx.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = joiner.Close() })
	members := append(append([]string(nil), addrs...), joiner.Addr())
	n, err := selfResync("join", joiner.Addr(), 3, 2, members)
	if err != nil {
		t.Fatalf("join resync: %v", err)
	}
	if int64(n) != joiner.Stats().ChunkCount {
		t.Fatalf("reported %d chunks, stored %d", n, joiner.Stats().ChunkCount)
	}
	if joiner.Stats().HeaderCount != 2 {
		t.Fatalf("joiner has %d headers, want 2", joiner.Stats().HeaderCount)
	}
	// Joining with a non-final id is a config error.
	if _, err := selfResync("join", joiner.Addr(), 1, 2, members); err == nil {
		t.Fatal("join with non-final id accepted")
	}
}

func TestSelfResyncRestartMode(t *testing.T) {
	servers, addrs, _ := serveCluster(t)
	lost := servers[1].Stats().ChunkCount
	if err := servers[1].Close(); err != nil {
		t.Fatal(err)
	}
	reborn, err := netx.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = reborn.Close() })
	members := append([]string(nil), addrs...)
	members[1] = reborn.Addr()
	n, err := selfResync("restart", reborn.Addr(), 1, 2, members)
	if err != nil {
		t.Fatalf("restart resync: %v", err)
	}
	if int64(n) != lost {
		t.Fatalf("resynced %d chunks, crashed member held %d", n, lost)
	}
	if _, err := selfResync("restart", reborn.Addr(), 9, 2, members); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := selfResync("bogus", reborn.Addr(), 1, 2, members); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := selfResync("restart", reborn.Addr(), 1, 2, nil); err == nil {
		t.Fatal("empty membership accepted")
	}
}
