// Command icinet runs the ICIStrategy storage layout over REAL TCP. It has
// two modes:
//
// Demo (default): starts one storage server per cluster member on
// localhost, distributes a chain of blocks with the same rendezvous
// placement the simulator uses, kills a server, and demonstrates a
// degraded, Merkle-verified read — the "it's not just a simulator" proof
// for the storage protocol.
//
// Serve (-serve, must be the first argument): runs ONE long-lived cluster
// member for the integration harness (cmd/icicontest): it binds a listen
// address, prints a readiness line on stdout, streams structured logfmt
// events on stderr, optionally re-syncs its chunks from peers at startup
// (crash recovery / joining), and shuts down gracefully on SIGTERM. See
// serve.go for the full harness contract.
//
// Usage:
//
//	icinet [-members 8] [-replication 2] [-blocks 5] [-tx 100] [-seed 42]
//	       [-listen 127.0.0.1:0] [-trace summary|tree] [-metrics FILE|-]
//	       [-pprof ADDR]
//	icinet -serve [-listen ADDR] [-id N] [-members A,B,C] [-replication R]
//	       [-state DIR] [-resync auto|join|restart|none] [-chaos]
package main

import (
	"flag"
	"fmt"
	"os"

	"icistrategy/internal/chain"
	"icistrategy/internal/experiments"
	"icistrategy/internal/metrics"
	"icistrategy/internal/netx"
	"icistrategy/internal/obs"
	"icistrategy/internal/trace"
	"icistrategy/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "icinet:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && (args[0] == "-serve" || args[0] == "--serve") {
		return runServe(args[1:])
	}
	fs := flag.NewFlagSet("icinet", flag.ContinueOnError)
	members := fs.Int("members", 8, "cluster size (one TCP server per member)")
	replication := fs.Int("replication", 2, "replication factor")
	blocks := fs.Int("blocks", 5, "blocks to distribute")
	txPerBlock := fs.Int("tx", 100, "transactions per block")
	seed := fs.Uint64("seed", 42, "workload seed")
	listen := fs.String("listen", "127.0.0.1:0", "listen address each demo server binds (port 0: ephemeral)")
	obsf := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := obsf.Setup(); err != nil {
		return err
	}

	// Start one real TCP server per cluster member.
	servers := make([]*netx.Server, *members)
	addrs := make([]string, *members)
	for i := range servers {
		s, err := netx.NewServer(*listen)
		if err != nil {
			// The member index plus netx's own addr context pins down
			// WHICH of the N servers failed, not just that one did.
			return fmt.Errorf("start member %d of %d: %w", i, *members, err)
		}
		defer s.Close()
		s.SetTracer(obsf.Tracer())
		servers[i] = s
		addrs[i] = s.Addr()
	}
	fmt.Printf("started %d TCP storage servers (cluster members)\n", *members)

	cl, err := netx.NewCluster(addrs, *replication)
	if err != nil {
		return err
	}
	defer cl.Close()
	cl.SetTracer(obsf.Tracer())

	gen, err := workload.NewGenerator(workload.Config{Accounts: 200, PayloadBytes: 40, Seed: *seed})
	if err != nil {
		return err
	}
	builder, err := workload.NewChainBuilder(gen, 10_000)
	if err != nil {
		return err
	}

	var chainBlocks []*chain.Block
	var totalBody int64
	for i := 0; i < *blocks; i++ {
		b, err := builder.NextBlock(*txPerBlock)
		if err != nil {
			return err
		}
		if err := cl.DistributeBlock(b); err != nil {
			return fmt.Errorf("distribute block %d: %w", i, err)
		}
		totalBody += int64(b.BodySize())
		chainBlocks = append(chainBlocks, b)
	}
	fmt.Printf("distributed %d blocks (%s of body data) over TCP\n",
		*blocks, metrics.HumanBytes(float64(totalBody)))

	// Per-server storage: nobody holds the whole chain.
	tbl := metrics.NewTable("per-server storage", "server", "headers", "chunks", "bytes", "of chain")
	for i, s := range servers {
		st := s.Stats()
		tbl.AddRow(addrs[i], st.HeaderCount, st.ChunkCount,
			metrics.HumanBytes(float64(st.TotalBytes())),
			fmt.Sprintf("%.1f%%", 100*float64(st.ChunkBytes)/float64(totalBody)))
	}
	fmt.Println()
	fmt.Println(tbl.String())

	// Verified read of a historical block.
	target := chainBlocks[len(chainBlocks)/2]
	got, err := cl.RetrieveBlock(target.Header)
	if err != nil {
		return err
	}
	fmt.Printf("retrieved block %d over TCP: %d txs, Merkle root verified\n",
		got.Header.Height, len(got.Txs))

	// Kill one server; with r>=2 the read still completes.
	if *replication >= 2 {
		fmt.Printf("\nkilling server %s ...\n", addrs[1])
		if err := servers[1].Close(); err != nil {
			return err
		}
		got, err := cl.RetrieveBlock(target.Header)
		if err != nil {
			return fmt.Errorf("degraded read: %w", err)
		}
		fmt.Printf("degraded read OK: block %d reassembled from surviving replicas\n",
			got.Header.Height)
	}

	fmt.Println()
	return obsf.Finish(os.Stdout, func(events []trace.Event) string {
		return experiments.TraceSummaryTable("per-phase trace breakdown (TCP)", events).String()
	})
}
