// icinet -serve: one long-running cluster member, the process the
// integration harness (internal/contest, cmd/icicontest) launches N of to
// drive the storage protocol over real sockets and real crashes.
//
// Contract with the harness:
//
//   - stdout: exactly one readiness line, "ICINET READY addr=... id=...",
//     printed once the listener is bound and serving.
//   - stderr: a structured logfmt event stream (event=NAME k=v ...) the
//     harness matches wait-log / assert-log conditions against.
//   - SIGTERM/SIGINT: graceful shutdown — drain in-flight requests, emit
//     event=serve.stop, exit 0.
//   - -state DIR: the member's identity (id, members, replication) is
//     persisted to DIR/member.json; a marker distinguishes first start
//     from restart so -resync auto can re-sync lost chunks from peers via
//     the netx bootstrap path.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"icistrategy/internal/experiments"
	"icistrategy/internal/gateway"
	"icistrategy/internal/netx"
	"icistrategy/internal/obs"
	"icistrategy/internal/simnet"
	"icistrategy/internal/trace"
)

// eventLog writes one logfmt line per event: event=NAME followed by
// key=value pairs, values quoted when they contain spaces or quotes. Safe
// for concurrent use (the netx server logs from handler goroutines).
type eventLog struct {
	mu sync.Mutex
	w  io.Writer
}

func newEventLog(w io.Writer) *eventLog { return &eventLog{w: w} }

// Event implements netx.Logf.
func (l *eventLog) Event(event string, kv ...any) {
	var b strings.Builder
	b.WriteString("event=")
	b.WriteString(event)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v=%s", kv[i], logfmtValue(kv[i+1]))
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = io.WriteString(l.w, b.String())
}

// logfmtValue renders one value, quoting when the bare form would be
// ambiguous to a line parser.
func logfmtValue(v any) string {
	s := fmt.Sprintf("%v", v)
	if s == "" || strings.ContainsAny(s, " \t\"=\n") {
		return strconv.Quote(s)
	}
	return s
}

// memberState is what -state DIR persists: enough for a restarted process
// to rejoin with the same identity (flags may be omitted on restart).
type memberState struct {
	ID          int      `json:"id"`
	Members     []string `json:"members"`
	Replication int      `json:"replication"`
}

// memberStatePath and startedMarkerPath name the files inside -state DIR.
func memberStatePath(dir string) string   { return filepath.Join(dir, "member.json") }
func startedMarkerPath(dir string) string { return filepath.Join(dir, "started") }

// loadMemberState reads a persisted identity; ok is false when none exists.
func loadMemberState(dir string) (memberState, bool, error) {
	data, err := os.ReadFile(memberStatePath(dir))
	if errors.Is(err, os.ErrNotExist) {
		return memberState{}, false, nil
	}
	if err != nil {
		return memberState{}, false, err
	}
	var st memberState
	if err := json.Unmarshal(data, &st); err != nil {
		return memberState{}, false, fmt.Errorf("corrupt %s: %w", memberStatePath(dir), err)
	}
	return st, true, nil
}

func saveMemberState(dir string, st memberState) error {
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(memberStatePath(dir), append(data, '\n'), 0o644)
}

// resolveResyncMode maps -resync auto onto a concrete mode using the
// restart marker: an original member's first boot has nothing to re-sync,
// a restarted one re-fetches its lost chunks.
func resolveResyncMode(mode string, restarted bool) (string, error) {
	switch mode {
	case "none", "join", "restart":
		return mode, nil
	case "auto":
		if restarted {
			return "restart", nil
		}
		return "none", nil
	default:
		return "", fmt.Errorf(`-resync must be "auto", "join", "restart" or "none", got %q`, mode)
	}
}

// selfResync bootstraps this member's store from its peers over TCP.
// In "restart" mode the membership is unchanged and the member re-fetches
// the chunks it owns (netx.ResyncMember); in "join" mode this member is
// the newest addition (its id must be the last) and takes ownership under
// the grown membership (netx.BootstrapNewMember).
func selfResync(mode, selfAddr string, id, replication int, members []string) (int, error) {
	if len(members) == 0 {
		return 0, errors.New("resync: no -members configured")
	}
	switch mode {
	case "restart":
		if id < 0 || id >= len(members) {
			return 0, fmt.Errorf("resync: id %d outside membership of %d", id, len(members))
		}
		cl, err := netx.NewCluster(members, replication)
		if err != nil {
			return 0, err
		}
		defer cl.Close()
		return cl.ResyncMember(selfAddr, simnet.NodeID(id))
	case "join":
		if id != len(members)-1 {
			return 0, fmt.Errorf("resync join: joining member must hold the last id, got %d of %d", id, len(members))
		}
		peers := members[:len(members)-1]
		cl, err := netx.NewCluster(peers, replication)
		if err != nil {
			return 0, err
		}
		defer cl.Close()
		return cl.BootstrapNewMember(selfAddr)
	default:
		return 0, fmt.Errorf("resync: unknown mode %q", mode)
	}
}

// resyncAttempts and resyncBackoff pace the startup bootstrap: peers in a
// scenario may come up within milliseconds of this process, so transient
// dial failures get a few retries before the node settles for serving
// whatever it has.
const (
	resyncAttempts = 5
	resyncBackoff  = 200 * time.Millisecond
)

// runServe is the -serve entry point; args excludes the -serve token.
func runServe(args []string) error {
	fs := flag.NewFlagSet("icinet -serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "TCP listen address")
	id := fs.Int("id", 0, "this member's placement id")
	membersFlag := fs.String("members", "", "comma-separated member addresses in placement-id order, including this node")
	replication := fs.Int("replication", 2, "replication factor blocks were distributed with")
	stateDir := fs.String("state", "", "state directory: persists identity and detects restarts")
	resyncFlag := fs.String("resync", "auto", `bootstrap-from-peers at startup: "auto" (restart-resync iff the state dir shows a prior run), "join", "restart", "none"`)
	chaos := fs.Bool("chaos", false, "honor FaultReq chaos control ops (for the integration harness)")
	gatewayAddr := fs.String("gateway", "", `also serve the client read gateway on this TCP address ("" disables)`)
	gatewayCache := fs.Int64("gateway-cache", 64<<20, "per-cache byte budget for the gateway block and chunk caches")
	obsf := obs.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := obsf.Setup(); err != nil {
		return err
	}
	elog := newEventLog(os.Stderr)

	members := splitMembers(*membersFlag)

	// State directory: recover persisted identity, detect restart, record
	// this run.
	restarted := false
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			return fmt.Errorf("serve: state dir: %w", err)
		}
		prev, ok, err := loadMemberState(*stateDir)
		if err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if ok && len(members) == 0 {
			members = prev.Members
			*id = prev.ID
			*replication = prev.Replication
		}
		if _, err := os.Stat(startedMarkerPath(*stateDir)); err == nil {
			restarted = true
		}
	}

	mode, err := resolveResyncMode(*resyncFlag, restarted)
	if err != nil {
		return fmt.Errorf("serve: %w", err)
	}

	srv, err := netx.NewServer(*listen)
	if err != nil {
		return fmt.Errorf("serve: start member %d: %w", *id, err)
	}
	defer srv.Close()
	srv.SetTracer(obsf.Tracer())
	srv.SetLogf(elog.Event)
	if *chaos {
		srv.EnableChaos()
	}

	if *stateDir != "" {
		if err := saveMemberState(*stateDir, memberState{ID: *id, Members: members, Replication: *replication}); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
		if err := os.WriteFile(startedMarkerPath(*stateDir), []byte(srv.Addr()+"\n"), 0o644); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}

	// Optional read gateway: a second listener serving cached, coalesced
	// block reads and light-client proofs out of the whole cluster.
	var gsrv *gateway.Server
	if *gatewayAddr != "" {
		if len(members) == 0 {
			return errors.New("serve: -gateway requires -members")
		}
		up, err := gateway.NewClusterUpstream(members, *replication)
		if err != nil {
			return fmt.Errorf("serve: gateway upstream: %w", err)
		}
		defer up.Close()
		g, err := gateway.New(gateway.Config{
			Upstream:        up,
			BlockCacheBytes: *gatewayCache,
			ChunkCacheBytes: *gatewayCache,
			Registry:        obsf.Registry(),
		})
		if err != nil {
			return fmt.Errorf("serve: gateway: %w", err)
		}
		gsrv, err = gateway.NewServer(*gatewayAddr, g)
		if err != nil {
			return fmt.Errorf("serve: gateway listen: %w", err)
		}
		defer gsrv.Close()
	}

	// Readiness: the harness blocks on this line before acting on the node.
	if gsrv != nil {
		fmt.Printf("ICINET READY addr=%s id=%d gateway=%s\n", srv.Addr(), *id, gsrv.Addr())
	} else {
		fmt.Printf("ICINET READY addr=%s id=%d\n", srv.Addr(), *id)
	}
	elog.Event("serve.ready", "addr", srv.Addr(), "id", *id, "restarted", restarted, "chaos", *chaos)
	if gsrv != nil {
		elog.Event("gateway.ready", "addr", gsrv.Addr(), "cache_bytes", *gatewayCache)
	}

	if mode != "none" {
		elog.Event("bootstrap.start", "mode", mode, "members", len(members))
		n, err := resyncWithRetry(elog, mode, srv.Addr(), *id, *replication, members)
		if err != nil {
			// Not fatal: the node keeps serving what it has; the harness
			// asserts on bootstrap.done when a scenario requires the sync.
			elog.Event("bootstrap.failed", "mode", mode, "err", err.Error())
		} else {
			elog.Event("bootstrap.done", "mode", mode, "chunks", n)
		}
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	sig := <-sigCh
	elog.Event("serve.signal", "signal", sig.String())
	if gsrv != nil {
		if err := gsrv.Close(); err != nil {
			elog.Event("gateway.close-error", "err", err.Error())
		}
		elog.Event("gateway.stop", "addr", gsrv.Addr())
	}
	if err := srv.Close(); err != nil {
		elog.Event("serve.close-error", "err", err.Error())
	}
	elog.Event("serve.stop", "addr", srv.Addr())
	return obsf.Finish(os.Stdout, func(events []trace.Event) string {
		return experiments.TraceSummaryTable("per-phase trace breakdown (serve)", events).String()
	})
}

// resyncWithRetry runs selfResync with a short retry loop so a node racing
// its peers out of the gate does not give up on the first refused dial.
func resyncWithRetry(elog *eventLog, mode, selfAddr string, id, replication int, members []string) (int, error) {
	var lastErr error
	for attempt := 1; attempt <= resyncAttempts; attempt++ {
		n, err := selfResync(mode, selfAddr, id, replication, members)
		if err == nil {
			return n, nil
		}
		lastErr = err
		elog.Event("bootstrap.retry", "attempt", attempt, "err", err.Error())
		time.Sleep(resyncBackoff)
	}
	return 0, lastErr
}

// splitMembers parses the comma-separated -members list.
func splitMembers(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
