# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# commands; keep the two in sync.

GO ?= go

.PHONY: all build test race lint lint-fix lint-selftest fmt vet bench bench-sim bench-gateway bench-churn sim contest

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The repo's own invariant suite — ten analyzers: determinism, chunkalias,
# atomicmix, metricname, spanbalance, poolreturn, goroleak, deadline,
# epochres, aliasflow. See DESIGN.md "Static analysis" for the annotation
# grammar. Exit 1 means findings; fix or annotate with
# //icilint:allow analyzer(reason). -strict-allow additionally fails on
# stale suppressions, matching the CI gate.
lint:
	$(GO) run ./cmd/icilint -strict-allow ./...

# Apply the suite's suggested fixes in place (copy-insertion for aliasing
# findings, stale-allow deletion under -strict-allow). Run `make lint`
# after to see what remains.
lint-fix:
	$(GO) run ./cmd/icilint -strict-allow -fix ./...

# Prove the gate still bites: the determinism and wire fixtures are
# known-bad, so icilint must exit non-zero on each.
lint-selftest:
	@for fixture in core wire; do \
		if $(GO) run ./cmd/icilint ./internal/analysis/analyzers/testdata/src/$$fixture; then \
			echo "icilint passed known-bad fixture $$fixture: the gate is broken" >&2; \
			exit 1; \
		fi; \
	done; \
	echo "lint-selftest ok: fixtures still flagged"

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run=NONE -bench 'Erasure' -benchtime 200ms .

# Regenerate the simulation-engine throughput snapshot: overhauled engine
# vs the frozen pre-overhaul baseline on the E4-style workload (DESIGN.md
# "Event engine"). CI runs the same command at -quick scale with
# -minspeedup 2 as the regression gate.
bench-sim:
	$(GO) run ./cmd/icibench -simbench BENCH_PR5.json

# Regenerate the read-gateway load snapshot: Zipfian closed-loop clients
# over a real TCP storage cluster, caches on vs off (DESIGN.md "Read-path
# gateway"). CI runs the same command at -quick scale with -minspeedup 1.5
# as the regression gate.
bench-gateway:
	$(GO) run ./cmd/icibench -gatewaybench BENCH_PR7.json

# Regenerate the churn availability/movement snapshot: graceful
# leave/rejoin cycles, flash-crowd join bursts, and correlated crashes over
# the epoch-versioned membership machinery (DESIGN.md "Membership epochs").
# CI runs the same command at -quick scale; the built-in gate requires
# graceful and flash-crowd churn to keep 100% availability within the
# per-epoch movement bound.
bench-churn:
	$(GO) run ./cmd/icibench -churnbench BENCH_PR8.json

sim:
	$(GO) run ./cmd/icisim -nodes 32 -clusters 4 -blocks 2 -trace summary

# Run every shipped integration scenario: real icinet -serve clusters over
# loopback TCP, driven by the contest harness (DESIGN.md "Integration
# harness"). CI's contest-smoke job runs bootstrap + crash-restart plus the
# negative self-test.
contest:
	$(GO) run ./cmd/icicontest scenarios/bootstrap.cont \
		scenarios/crash-restart.cont scenarios/membership.cont \
		scenarios/byzantine.cont scenarios/gateway.cont \
		scenarios/churn.cont
